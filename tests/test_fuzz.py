"""The differential fuzz harness: sampler validity, campaign behaviour.

Three properties carry the harness:

* every sampled case is *valid* — organizations round-trip through the
  scenario-file loader's constraints, schedules through
  ``SubPopulation``, so a campaign can only ever fail by divergence;
* campaigns are pure functions of (seed, count): same seed, same cases,
  same verdicts, bit-identical between ``--jobs 1`` and ``--jobs N``;
* the tier-1 smoke campaign itself: a fixed-seed quick run across every
  registered oracle pair must finish with zero divergences (the nightly
  CI job runs the same command 20x larger).
"""

import pytest

from repro.fuzz import (
    ORACLE_KEYS,
    ORACLE_PAIRS,
    plan_campaign,
    resolve_oracles,
    run_campaign,
)
from repro.fuzz import sampler
from repro.fuzz.campaign import sample_campaign_cases
from repro.fuzz.oracles import organization_config
from repro.util.rng import make_rng


class TestSamplerValidity:
    @pytest.mark.parametrize("seed", range(12))
    def test_sampled_organizations_load(self, seed):
        """Every sampled organization table passes the scenario-file
        loader's full constraint set (io_width, pow2 sizes, check
        devices, capacity alignment)."""
        rng = make_rng(seed)
        org = sampler.sample_organization(rng)
        config = organization_config(org)
        assert config.channels == org["channels"]
        assert config.check_devices_per_rank >= 1

    @pytest.mark.parametrize("seed", range(8))
    def test_arcc_required_organizations_are_capable(self, seed):
        from repro.perf.engine import arcc_capable

        org = sampler.sample_organization(make_rng(seed), require_arcc=True)
        assert arcc_capable(organization_config(org))

    def test_builtin_references_resolve(self):
        for name in sampler.BUILTIN_ORGANIZATIONS:
            assert organization_config(name).channels >= 2

    @pytest.mark.parametrize("key", ORACLE_KEYS)
    def test_case_sampling_is_deterministic(self, key):
        pair = ORACLE_PAIRS[key]
        assert pair.sample(make_rng(7), False) == pair.sample(
            make_rng(7), False
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_schedules_fit_the_lifespan(self, seed):
        phases = sampler.sample_schedule(make_rng(seed), 5.0)
        assert len(phases) <= 2
        assert sum(duration for duration, _ in phases) < 5.0

    def test_mix_names_are_real(self):
        from repro.workloads.spec import mix_by_name

        names = sampler.sample_mix_names(make_rng(3), 1, 2)
        for name in names:
            assert mix_by_name(name).name == name


class TestCampaign:
    def test_cases_are_pure_functions_of_seed_and_index(self):
        full = sample_campaign_cases(seed=5, count=10, quick=True)
        again = sample_campaign_cases(seed=5, count=10, quick=True)
        assert [(i, p.key, s, c) for i, p, s, c in full] == [
            (i, p.key, s, c) for i, p, s, c in again
        ]
        # Prefix stability: a longer campaign starts with the same cases.
        longer = sample_campaign_cases(seed=5, count=14, quick=True)
        assert [c for _, _, _, c in longer[:10]] == [
            c for _, _, _, c in full
        ]

    def test_round_robin_covers_every_pair(self):
        plan = plan_campaign(seed=1, count=len(ORACLE_KEYS) * 2, quick=True)
        names = [job.name for job in plan.jobs]
        for key in ORACLE_KEYS:
            assert sum(f"[{key}]" in n for n in names) == 2

    def test_smoke_campaign_finds_no_divergence(self):
        """Tier-1's fixed-seed smoke campaign across every oracle pair."""
        report = run_campaign(seed=0, count=10, quick=True, jobs=1)
        assert report.ok, report.to_table()
        assert {r.oracle for r in report.results} == set(ORACLE_KEYS)
        assert "all cases agree" in report.to_table()

    @pytest.mark.slow
    def test_jobs_parallelism_is_bit_identical(self):
        serial = run_campaign(seed=3, count=10, quick=True, jobs=1)
        parallel = run_campaign(seed=3, count=10, quick=True, jobs=2)
        assert [
            (r.index, r.oracle, r.case_seed, r.case, r.diverged, r.detail)
            for r in serial.results
        ] == [
            (r.index, r.oracle, r.case_seed, r.case, r.diverged, r.detail)
            for r in parallel.results
        ]


class TestOracleRegistry:
    def test_every_pair_declares_guarantee_and_hook(self):
        for pair in ORACLE_PAIRS.values():
            assert pair.guarantee in ("bit-identical", "exact", "upper-bound")
            assert pair.hook.startswith("tests/")

    def test_resolve_preserves_request_order_and_dedups(self):
        picked = resolve_oracles(["pair-screen", "montecarlo", "pair-screen"])
        assert [p.key for p in picked] == ["pair-screen", "montecarlo"]

    def test_unknown_oracle_gets_a_suggestion(self):
        with pytest.raises(KeyError, match="did you mean 'montecarlo'"):
            resolve_oracles(["montecarl"])

    def test_unknown_organization_gets_a_suggestion(self):
        with pytest.raises(KeyError, match="did you mean 'arcc'"):
            organization_config("arc")

    def test_registry_exposes_fuzz_figure(self):
        from repro.runner.registry import FIGURES

        assert "fuzz" in FIGURES
        plan = FIGURES["fuzz"].plan(quick=True)
        assert len(plan.jobs) == 10

    def test_unknown_figure_gets_a_suggestion(self):
        from repro.runner.registry import build_plans

        with pytest.raises(KeyError, match="did you mean 'fuzz'"):
            build_plans(["fuz"])

    def test_unknown_scenario_gets_a_suggestion(self):
        from repro.fleet.scenarios import DEFAULT_SCENARIOS, resolve_scenario

        first = next(iter(DEFAULT_SCENARIOS))
        with pytest.raises(KeyError, match="did you mean"):
            resolve_scenario(first[:-1] + "x")


class TestFuzzCli:
    def test_list_names_every_pair(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--list"]) == 0
        out = capsys.readouterr().out
        for key in ORACLE_KEYS:
            assert key in out

    def test_smoke_campaign_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--seed", "0", "--count", "5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "all cases agree" in out
        assert "0 divergence(s)" in out

    def test_unknown_oracle_flag_suggests(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="did you mean"):
            main(["fuzz", "--oracles", "montecarl", "--count", "1"])

    def test_replay_missing_file_fails_cleanly(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="repro fuzz"):
            main(["fuzz", "--replay", str(tmp_path / "nope.json")])
