"""The shrinker's contract, proven against an intentionally broken engine.

The campaign's promise is not "finds bugs" but "turns a bug into a
minimal, replayable artifact". These tests break a real engine — the
vectorized Monte-Carlo fast path's scrub-boundary helper
(``_next_scrub_array``), which the exact event loops never call — run a
campaign against it, and pin the whole reporting pipeline:

* the campaign finds the divergence and the shrinker minimizes it
  **deterministically** (same input case, same minimized case),
  **monotonically** (every adopted candidate, and the final case, still
  diverges) and **boundedly** (at most ``SHRINK_PASS_BUDGET`` passes);
* the written repro file replays to the same divergence while the bug
  exists (`repro fuzz --replay` exits 1) and comes back clean once the
  engine is fixed (exits 0).
"""

import numpy as np
import pytest

import repro.reliability.montecarlo as mc_mod
from repro.fuzz import (
    SHRINK_PASS_BUDGET,
    ORACLE_PAIRS,
    load_repro_file,
    replay_repro_file,
    run_campaign,
    shrink_case,
    write_repro_file,
)
from repro.fuzz.campaign import sample_campaign_cases


@pytest.fixture
def broken_scrub(monkeypatch):
    """Break only the vectorized fast path: scrubs never happen, so every
    intersecting two-fault pair becomes an ARCC SDC / sparing DUE even
    when the exact event loop sees it detected in time."""
    monkeypatch.setattr(
        mc_mod,
        "_next_scrub_array",
        lambda time_hours, interval: np.full_like(time_hours, np.inf),
    )


def _diverging_case():
    """The first seed-0 montecarlo case that trips the broken engine."""
    pair = ORACLE_PAIRS["montecarlo"]
    for _, _, _, case in sample_campaign_cases(
        seed=0, count=10, oracles=["montecarlo"], quick=True
    ):
        if pair.execute(case) is not None:
            return case
    raise AssertionError("broken engine produced no divergence in 10 cases")


class TestBrokenEngineCampaign:
    def test_campaign_finds_minimizes_and_writes_repro(
        self, broken_scrub, tmp_path
    ):
        report = run_campaign(
            seed=0,
            count=10,
            oracles=["montecarlo"],
            quick=True,
            jobs=1,
            report_dir=tmp_path,
        )
        assert not report.ok
        assert report.shrunk and report.repro_paths
        shrunk = report.shrunk[0]
        # Monotone: the minimized case is itself the stored divergence.
        assert ORACLE_PAIRS["montecarlo"].execute(shrunk.case) == shrunk.detail
        # Actually smaller, not just re-sampled.
        assert shrunk.case["channels"] <= shrunk.original_case["channels"]
        assert shrunk.shrunk

        payload = load_repro_file(report.repro_paths[0])
        assert payload["oracle"] == "montecarlo"
        assert payload["campaign_seed"] == 0
        assert payload["case"] == shrunk.case


class TestShrinkerContract:
    def test_deterministic(self, broken_scrub):
        case = _diverging_case()
        first = shrink_case("montecarlo", case)
        second = shrink_case("montecarlo", case)
        assert first == second

    def test_monotone(self, broken_scrub):
        case = _diverging_case()
        result = shrink_case("montecarlo", case)
        assert ORACLE_PAIRS["montecarlo"].execute(result.case) is not None

    def test_bounded(self, broken_scrub):
        case = _diverging_case()
        result = shrink_case("montecarlo", case)
        assert result.passes <= SHRINK_PASS_BUDGET
        tighter = shrink_case("montecarlo", case, budget=2)
        assert tighter.passes <= 2
        # A tighter budget still returns a diverging case.
        assert ORACLE_PAIRS["montecarlo"].execute(tighter.case) is not None

    def test_passing_case_is_rejected(self):
        case = _healthy_case()
        with pytest.raises(ValueError, match="does not diverge"):
            shrink_case("montecarlo", case)


def _healthy_case():
    return sample_campaign_cases(
        seed=0, count=1, oracles=["montecarlo"], quick=True
    )[0][3]


class TestReplay:
    def test_replay_reproduces_then_clears(
        self, broken_scrub, tmp_path, capsys
    ):
        from repro.cli import main

        result = shrink_case("montecarlo", _diverging_case())
        path = write_repro_file(
            tmp_path / "repro.json", result, campaign_seed=0, case_index=0
        )
        # Replaying against the still-broken engine reproduces: exit 1.
        assert main(["fuzz", "--replay", str(path)]) == 1
        assert "still diverges" in capsys.readouterr().out
        assert replay_repro_file(path) == result.detail

    def test_replay_clean_after_fix(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        orig = mc_mod._next_scrub_array
        monkeypatch.setattr(
            mc_mod,
            "_next_scrub_array",
            lambda t, i: np.full_like(t, np.inf),
        )
        result = shrink_case("montecarlo", _diverging_case())
        path = write_repro_file(tmp_path / "repro.json", result)
        monkeypatch.setattr(mc_mod, "_next_scrub_array", orig)
        # The engine is fixed: the repro comes back clean, exit 0.
        assert replay_repro_file(path) is None
        assert main(["fuzz", "--replay", str(path)]) == 0
        assert "no divergence" in capsys.readouterr().out

    def test_replay_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "not-a-repro.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="not a repro-fuzz/1"):
            replay_repro_file(path)
