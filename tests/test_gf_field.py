"""Unit + property tests for GF(2^m) arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gf.field import GF, GF16, GF256

elements256 = st.integers(min_value=0, max_value=255)
nonzero256 = st.integers(min_value=1, max_value=255)


class TestConstruction:
    def test_default_polynomials(self):
        for m in (2, 3, 4, 8, 16):
            field = GF(m)
            assert field.order == 1 << m

    def test_non_primitive_rejected(self):
        # x^8 + 1 is not primitive over GF(2).
        with pytest.raises(ValueError):
            GF(8, primitive_poly=0b100000001)

    def test_unsupported_size_rejected(self):
        with pytest.raises(ValueError):
            GF(1)
        with pytest.raises(ValueError):
            GF(17)

    def test_shared_instances(self):
        assert GF256.m == 8 and GF16.m == 4

    def test_equality_and_hash(self):
        assert GF(8) == GF256
        assert hash(GF(8)) == hash(GF256)
        assert GF(4) != GF256


class TestBasicOps:
    def test_add_is_xor(self):
        assert GF256.add(0x53, 0xCA) == 0x53 ^ 0xCA

    def test_sub_equals_add(self):
        assert GF256.sub(7, 3) == GF256.add(7, 3)

    def test_mul_by_zero(self):
        assert GF256.mul(0, 0x55) == 0
        assert GF256.mul(0x55, 0) == 0

    def test_mul_by_one(self):
        for a in (1, 2, 0x53, 0xFF):
            assert GF256.mul(a, 1) == a

    def test_known_product_with_reduction(self):
        # 2 * 0x80 wraps: 0x100 ^ 0x11D = 0x1D with the RS polynomial.
        assert GF256.mul(2, 0x80) == 0x1D

    def test_div_inverse_of_mul(self):
        assert GF256.div(GF256.mul(0x37, 0x91), 0x91) == 0x37

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            GF256.div(5, 0)

    def test_inv_zero(self):
        with pytest.raises(ZeroDivisionError):
            GF256.inv(0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            GF256.mul(256, 1)
        with pytest.raises(ValueError):
            GF16.add(16, 0)


class TestPow:
    def test_zero_powers(self):
        assert GF256.pow(0, 0) == 1
        assert GF256.pow(0, 5) == 0

    def test_zero_negative_power(self):
        with pytest.raises(ZeroDivisionError):
            GF256.pow(0, -1)

    def test_pow_matches_repeated_mul(self):
        acc = 1
        for e in range(10):
            assert GF256.pow(3, e) == acc
            acc = GF256.mul(acc, 3)

    def test_negative_power_is_inverse(self):
        for a in (1, 2, 0x80, 0xFF):
            assert GF256.pow(a, -1) == GF256.inv(a)

    def test_alpha_pow_cycles(self):
        assert GF256.alpha_pow(0) == 1
        assert GF256.alpha_pow(255) == GF256.alpha_pow(0)


class TestFieldAxioms:
    @given(elements256, elements256, elements256)
    def test_mul_associative(self, a, b, c):
        lhs = GF256.mul(GF256.mul(a, b), c)
        rhs = GF256.mul(a, GF256.mul(b, c))
        assert lhs == rhs

    @given(elements256, elements256)
    def test_mul_commutative(self, a, b):
        assert GF256.mul(a, b) == GF256.mul(b, a)

    @given(elements256, elements256, elements256)
    def test_distributive(self, a, b, c):
        lhs = GF256.mul(a, b ^ c)
        rhs = GF256.mul(a, b) ^ GF256.mul(a, c)
        assert lhs == rhs

    @given(nonzero256)
    def test_inverse_roundtrip(self, a):
        assert GF256.mul(a, GF256.inv(a)) == 1

    @given(nonzero256, nonzero256)
    def test_div_mul_roundtrip(self, a, b):
        assert GF256.mul(GF256.div(a, b), b) == a

    @given(nonzero256)
    def test_log_exp_roundtrip(self, a):
        assert GF256.alpha_pow(GF256.log(a)) == a

    def test_log_zero_rejected(self):
        with pytest.raises(ValueError):
            GF256.log(0)

    def test_multiplicative_group_order(self):
        """alpha generates all 255 non-zero elements."""
        seen = {GF256.alpha_pow(e) for e in range(255)}
        assert len(seen) == 255
        assert 0 not in seen


class TestGF16:
    @given(
        st.integers(min_value=1, max_value=15),
        st.integers(min_value=1, max_value=15),
    )
    def test_product_nonzero(self, a, b):
        assert GF16.mul(a, b) != 0

    def test_poly_eval(self):
        # p(x) = x^2 + 1 at x=2 -> 4 ^ 1 = 5 in GF(16).
        assert GF16.poly_eval([1, 0, 1], 2) == 5
