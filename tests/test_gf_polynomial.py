"""Unit + property tests for polynomials over GF(2^m)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gf.field import GF16, GF256
from repro.gf.polynomial import Polynomial

coeff_lists = st.lists(
    st.integers(min_value=0, max_value=255), min_size=1, max_size=12
)


def poly(coeffs):
    return Polynomial(GF256, coeffs)


class TestConstruction:
    def test_trailing_zeros_trimmed(self):
        assert poly([1, 2, 0, 0]).coeffs == [1, 2]

    def test_zero_polynomial(self):
        z = Polynomial.zero(GF256)
        assert z.is_zero() and z.degree == -1

    def test_one(self):
        one = Polynomial.one(GF256)
        assert one.degree == 0 and one.coeffs == [1]

    def test_monomial(self):
        m = Polynomial.monomial(GF256, 3, coeff=5)
        assert m.degree == 3 and m[3] == 5 and m[0] == 0

    def test_monomial_negative_degree(self):
        with pytest.raises(ValueError):
            Polynomial.monomial(GF256, -1)

    def test_invalid_coefficient(self):
        with pytest.raises(ValueError):
            poly([256])

    def test_getitem_out_of_range_is_zero(self):
        assert poly([1, 2])[10] == 0


class TestArithmetic:
    def test_add_is_coefficientwise_xor(self):
        assert (poly([1, 2]) + poly([3, 0, 7])).coeffs == [2, 2, 7]

    def test_add_self_is_zero(self):
        p = poly([5, 6, 7])
        assert (p + p).is_zero()

    def test_mul_by_zero(self):
        assert (poly([1, 2]) * Polynomial.zero(GF256)).is_zero()

    def test_mul_degree_adds(self):
        p, q = poly([1, 1]), poly([1, 0, 1])
        assert (p * q).degree == p.degree + q.degree

    def test_scale(self):
        assert poly([1, 2]).scale(2).coeffs == [2, 4]

    def test_shift(self):
        assert poly([1]).shift(3).coeffs == [0, 0, 0, 1]

    def test_shift_negative(self):
        with pytest.raises(ValueError):
            poly([1]).shift(-1)

    def test_cross_field_rejected(self):
        with pytest.raises(ValueError):
            poly([1]) + Polynomial(GF16, [1])


class TestDivision:
    def test_divmod_identity(self):
        a = poly([5, 3, 1, 7])
        b = poly([2, 1])
        q, r = a.divmod(b)
        assert (q * b + r).coeffs == a.coeffs
        assert r.degree < b.degree

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            poly([1]).divmod(Polynomial.zero(GF256))

    def test_exact_division(self):
        b = poly([3, 1])
        product = b * poly([7, 2, 1])
        q, r = product.divmod(b)
        assert r.is_zero()
        assert q.coeffs == [7, 2, 1]

    @given(coeff_lists, coeff_lists)
    def test_divmod_property(self, a_coeffs, b_coeffs):
        a, b = poly(a_coeffs), poly(b_coeffs)
        if b.is_zero():
            return
        q, r = a.divmod(b)
        assert (q * b + r) == a
        assert r.is_zero() or r.degree < b.degree


class TestEvaluation:
    def test_eval_constant(self):
        assert poly([7]).eval(100) == 7

    def test_eval_at_zero_gives_constant_term(self):
        assert poly([9, 5, 3]).eval(0) == 9

    def test_from_roots_evaluates_to_zero(self):
        roots = [1, 2, 3, 7]
        p = Polynomial.from_roots(GF256, roots)
        assert p.degree == len(roots)
        for r in roots:
            assert p.eval(r) == 0

    def test_non_root_nonzero(self):
        p = Polynomial.from_roots(GF256, [1, 2])
        assert p.eval(5) != 0

    @given(coeff_lists, st.integers(min_value=0, max_value=255))
    def test_eval_matches_horner_manual(self, coeffs, x):
        p = poly(coeffs)
        acc = 0
        for c in reversed(p.coeffs):
            acc = GF256.mul(acc, x) ^ c
        assert p.eval(x) == acc


class TestDerivative:
    def test_constant_derivative_zero(self):
        assert poly([5]).derivative().is_zero()

    def test_char2_even_terms_vanish(self):
        # d/dx (a + bx + cx^2 + dx^3) = b + dx^2 in characteristic 2.
        p = poly([1, 2, 3, 4])
        assert p.derivative().coeffs == [2, 0, 4]

    def test_equality_and_hash(self):
        assert poly([1, 2]) == poly([1, 2, 0])
        assert hash(poly([1, 2])) == hash(poly([1, 2, 0]))

    def test_repr_readable(self):
        assert "x^1" in repr(poly([0, 3]))
