"""Cross-module integration scenarios: the paper's story, end to end."""

import random

import pytest

from repro.core.arcc import ARCCMemorySystem
from repro.core.modes import ProtectionMode
from repro.ecc.base import DecodeStatus
from repro.faults.types import FaultType


def random_line(seed):
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(64))


class TestFullLifecycle:
    """Boot -> relax -> fault -> scrub -> upgrade -> survive -> detect."""

    def test_chapter_4_story(self):
        memory = ARCCMemorySystem(pages=4, seed=100)
        boot_report = memory.boot()
        assert boot_report.clean

        payloads = {
            line: random_line(line) for line in range(0, 256, 7)
        }
        for line, data in payloads.items():
            memory.write_line(line, data)

        # Years pass; periodic scrubs find nothing.
        for _ in range(3):
            report, upgrades = memory.scrub()
            assert report.clean and not upgrades
        assert memory.fraction_upgraded() == 0.0

        # A device fails in the field.
        memory.inject_fault(FaultType.DEVICE, channel=0, rank=1, device=11)

        # Demand reads in the exposure window still correct (one bad
        # symbol per relaxed codeword).
        hit_lines = [
            line for line in payloads
            if memory.read_line(line)[1].status == DecodeStatus.CORRECTED
        ]
        assert hit_lines  # the fault is visible somewhere

        # The next scrub upgrades exactly the affected pages.
        report, upgrades = memory.scrub()
        assert report.faulty_pages == set(upgrades)
        assert 0 < memory.fraction_upgraded() <= 1.0

        # All data still correct after re-encode.
        for line, data in payloads.items():
            got, result = memory.read_line(line)
            assert got == data
            assert result.status in (
                DecodeStatus.NO_ERROR, DecodeStatus.CORRECTED
            )

        # A second device failure in the same rank is now *detected*
        # (upgraded codewords guarantee double detection) — no SDC.
        memory.inject_fault(FaultType.DEVICE, channel=0, rank=1, device=2)
        statuses = {
            memory.read_line(line)[1].status for line in payloads
        }
        assert DecodeStatus.MISCORRECTED not in statuses
        assert memory.stats.sdc_reads == 0

    def test_storage_overhead_constant_through_upgrade(self):
        """The Section 4.1 claim: upgrading changes no storage totals —
        the same device cells hold the re-encoded page."""
        memory = ARCCMemorySystem(pages=2, seed=101)
        memory.boot()
        for line in range(0, 128, 3):
            memory.write_line(line, random_line(line))

        def cell_count():
            return sum(
                len(dev._cells)
                for channel in memory.storage.devices
                for rank in channel
                for dev in rank
            )

        memory.inject_fault(FaultType.BANK, channel=0, rank=0, device=1)
        # Scrub probes touch every cell of every line, so compare the
        # full-memory cell count, which is geometry- not mode-dependent.
        memory.scrub()
        after_upgrade = cell_count()
        memory.scrub()
        assert cell_count() == after_upgrade

    def test_column_fault_partial_upgrade(self):
        """Smaller faults upgrade fewer pages (Table 7.4's granularity),
        visible even at this small scale."""
        memory = ARCCMemorySystem(pages=8, seed=102)
        memory.boot()
        for line in range(0, 512, 16):
            memory.write_line(line, random_line(line))
        memory.inject_fault(FaultType.COLUMN, channel=0, rank=0, device=0)
        report, _ = memory.scrub()
        assert 0 < len(report.faulty_pages) < 8

    def test_scrub_period_loop_with_growing_faults(self):
        """Faults accumulate across scrub periods; the upgraded fraction
        is monotone non-decreasing, data always intact."""
        memory = ARCCMemorySystem(pages=4, seed=103)
        memory.boot()
        payloads = {line: random_line(line) for line in range(0, 256, 11)}
        for line, data in payloads.items():
            memory.write_line(line, data)

        fractions = [memory.fraction_upgraded()]
        faults = [
            (FaultType.ROW, 0, 0, 3),
            (FaultType.BANK, 1, 0, 7),
            (FaultType.DEVICE, 0, 1, 5),
        ]
        for fault_type, channel, rank, device in faults:
            memory.inject_fault(
                fault_type, channel=channel, rank=rank, device=device
            )
            memory.scrub()
            fractions.append(memory.fraction_upgraded())
            for line, data in payloads.items():
                got, _ = memory.read_line(line)
                assert got == data
        assert fractions == sorted(fractions)

    def test_write_path_maintains_codeword_consistency(self):
        """Writes to upgraded pages must leave decodable, consistent
        codewords (the LLC paired-writeback requirement, done here via
        read-modify-write)."""
        memory = ARCCMemorySystem(pages=2, seed=104)
        memory.boot()
        memory.inject_fault(FaultType.LANE, channel=0, rank=0, device=0)
        memory.scrub()
        assert memory.mode_of_page(0) == ProtectionMode.UPGRADED
        for line in range(0, 16):
            memory.write_line(line, random_line(line + 500))
        for line in range(0, 16):
            got, result = memory.read_line(line)
            assert got == random_line(line + 500)
            assert result.ok

    def test_devices_per_access_tracks_upgraded_fraction(self):
        """The power proxy: average devices/access grows from 18 toward
        36 as pages upgrade."""
        memory = ARCCMemorySystem(pages=4, seed=105)
        memory.boot()
        for line in range(0, 256, 8):
            memory.write_line(line, random_line(line))
        relaxed_avg = memory.stats.devices_per_access
        assert relaxed_avg == pytest.approx(18.0)

        memory.inject_fault(FaultType.LANE, channel=0, rank=0, device=0)
        memory.scrub()
        for line in range(0, 256, 8):
            memory.read_line(line)
        assert memory.stats.devices_per_access > relaxed_avg
