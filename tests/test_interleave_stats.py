"""Tests for the half-symbol upgraded design, trace statistics, and the
Section 6.1 DUE-equality claim."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.base import CodecError, DecodeStatus
from repro.ecc.interleave import HalfSymbolUpgradedCodec
from repro.reliability.analytical import ReliabilityParams
from repro.reliability.due import due_rate_arcc, due_rate_sccdcd
from repro.util.rng import make_rng
from repro.workloads.spec import BENCHMARKS
from repro.workloads.stats import measure_trace, validate_against_profile
from repro.workloads.trace import CoreTrace, TraceAccess


def random_line(n=128, seed=0):
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(n))


class TestHalfSymbolDesign:
    def test_eight_codewords_per_line(self):
        """Section 4.1: halving the symbol size doubles the codewords."""
        codec = HalfSymbolUpgradedCodec()
        logical = codec.encode_line(random_line(seed=1))
        assert len(logical) == 8
        assert codec.codewords_per_line == 8

    def test_symbols_are_nibbles(self):
        codec = HalfSymbolUpgradedCodec()
        logical = codec.encode_line(random_line(seed=2))
        assert all(0 <= s <= 0xF for cw in logical for s in cw)
        assert all(len(cw) == 36 for cw in logical)

    def test_clean_roundtrip(self):
        codec = HalfSymbolUpgradedCodec()
        data = random_line(seed=3)
        result = codec.decode_line(codec.encode_line(data))
        assert result.status == DecodeStatus.NO_ERROR
        assert result.data == data

    def test_single_device_failure_corrected(self):
        codec = HalfSymbolUpgradedCodec()
        data = random_line(seed=4)
        logical = codec.encode_line(data)
        for device in (0, 17, 35):
            corrupted = codec.corrupt_device(logical, device, 0xA)
            result = codec.decode_line(corrupted)
            assert result.status == DecodeStatus.CORRECTED
            assert result.data == data

    def test_double_device_detected(self):
        codec = HalfSymbolUpgradedCodec()
        logical = codec.encode_line(random_line(seed=5))
        corrupted = codec.corrupt_device(
            codec.corrupt_device(logical, 2, 0x5), 30, 0x9
        )
        assert codec.decode_line(corrupted).status == (
            DecodeStatus.DETECTED_UE
        )

    def test_erasure_decode(self):
        codec = HalfSymbolUpgradedCodec()
        data = random_line(seed=6)
        corrupted = codec.corrupt_device(codec.encode_line(data), 7, 0xF)
        result = codec.decode_line(corrupted, erasures=[7])
        assert result.ok and result.data == data

    def test_shape_errors_rejected(self):
        codec = HalfSymbolUpgradedCodec()
        with pytest.raises(CodecError):
            codec.encode_line(bytes(64))
        with pytest.raises(CodecError):
            codec.decode_line([[0] * 36] * 7)
        with pytest.raises(CodecError):
            codec.corrupt_device([[0] * 36] * 8, 36)

    @settings(max_examples=15, deadline=None)
    @given(st.binary(min_size=128, max_size=128), st.integers(0, 35),
           st.integers(1, 15))
    def test_chipkill_property(self, data, device, pattern):
        """The chipkill guarantee survives the symbol-size change —
        exactly the flexibility claim of Section 4.1."""
        codec = HalfSymbolUpgradedCodec()
        corrupted = codec.corrupt_device(
            codec.encode_line(data), device, pattern
        )
        result = codec.decode_line(corrupted)
        assert result.status == DecodeStatus.CORRECTED
        assert result.data == data


class TestTraceStatistics:
    def _stream(self, name, n=4000, seed=1):
        trace = CoreTrace(BENCHMARKS[name], 0, make_rng(seed))
        return (next(trace) for _ in range(n))

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            measure_trace([])

    def test_limit_respected(self):
        stats = measure_trace(self._stream("swim"), limit=100)
        assert stats.accesses == 100

    def test_sequential_fraction_tracks_profile(self):
        for name in ("libquantum", "swim", "omnetpp"):
            stats = measure_trace(self._stream(name))
            assert abs(
                stats.sequential_fraction
                - BENCHMARKS[name].spatial_locality
            ) < 0.08, name

    def test_write_fraction_tracks_profile(self):
        stats = measure_trace(self._stream("lbm"))
        expected = 1.0 - BENCHMARKS["lbm"].read_fraction
        assert abs(stats.write_fraction - expected) < 0.05

    def test_intensity_tracks_profile(self):
        stats = measure_trace(self._stream("mcf2006", n=6000))
        assert abs(
            stats.effective_mpki - BENCHMARKS["mcf2006"].llc_mpki
        ) < 0.25 * BENCHMARKS["mcf2006"].llc_mpki

    def test_every_profile_validates(self):
        """The substitution-honesty check: every benchmark's generator
        reproduces its own declared statistics."""
        for name, profile in BENCHMARKS.items():
            stats = measure_trace(self._stream(name, n=5000, seed=7))
            assert validate_against_profile(stats, profile), name

    def test_footprint_measured(self):
        stats = measure_trace(self._stream("mesa", n=3000))
        assert 0 < stats.unique_pages <= BENCHMARKS["mesa"].footprint_pages

    def test_handmade_trace(self):
        accesses = [
            TraceAccess(line_address=i, is_write=(i % 2 == 0),
                        instructions_since_last=10)
            for i in range(10)
        ]
        stats = measure_trace(accesses)
        assert stats.sequential_fraction == 1.0
        assert stats.write_fraction == 0.5
        assert stats.effective_mpki == pytest.approx(100.0)


class TestDueEquality:
    def test_arcc_due_equals_sccdcd(self):
        """Section 6.1: ARCC does not degrade the DUE rate."""
        for mult in (1.0, 2.0, 4.0):
            params = ReliabilityParams(rate_multiplier=mult)
            assert due_rate_arcc(params) == due_rate_sccdcd(params)
