"""Three-way golden matrix for the compiled replay kernel.

The compiled tier (``repro.perf._kernel``) must be bit-identical to the
Python batched ``replay()`` — and transitively to the per-access
``TraceSimulator.run`` oracle — field for field, across every axis the
sweep registry exercises: all 12 mixes x 5 upgraded fractions, the
custom organizations of ``test_custom_organizations.py``, non-default
seeds, and deep eviction-heavy runs. When no C compiler is present the
module *skips with the loader's reason string* — a visible skip, never
a silent pass (the CI fallback leg exercises exactly that path).
"""

import dataclasses

import pytest
from test_custom_organizations import (
    CUSTOM_ORGANIZATIONS,
    result_fingerprint,
)

from repro.config import ARCC_MEMORY_CONFIG, PROCESSOR_CONFIG
from repro.faults.models import upgraded_page_fraction
from repro.faults.types import FaultType
from repro.perf._kernel import (
    kernel_available,
    kernel_provenance,
    replay_compiled,
    replay_compiled_stats,
)
from repro.perf.engine import SweepPoint, replay
from repro.perf.simulator import TraceSimulator
from repro.perf.trace import materialize_mix
from repro.workloads.spec import ALL_MIXES, mix_by_name

pytestmark = pytest.mark.skipif(
    not kernel_available(),
    reason=f"compiled replay kernel unavailable: {kernel_provenance()}",
)

#: The five fractions the full-scale sweeps visit most: fault-free, the
#: column/bank/device Table 7.4 points, and the lane worst case.
FRACTIONS = (0.0, 0.0625, 0.25, 0.5, 1.0)

INSTRUCTIONS = 3_000
DEEP_INSTRUCTIONS = 300_000

#: A 1k-line, 4-way LLC (the replay reads only ``l2_sets``/``l2_assoc``
#: from the processor table): every set overflows within the warmup, so
#: the deep runs spend most of their accesses in the eviction and
#: paired-evict paths rather than warming an oversized cache.
EVICTION_HEAVY_PROCESSOR = dataclasses.replace(
    PROCESSOR_CONFIG, l2_assoc=4, cacheline_bytes=1024
)


def three_way(mix, config, fraction, seed=0x7ACE, instructions=INSTRUCTIONS):
    """Assert compiled == Python replay == legacy oracle on one cell."""
    batch = materialize_mix(mix, seed, instructions)
    point = SweepPoint(config=config, upgraded_fraction=fraction)
    compiled = result_fingerprint(replay_compiled(batch, point))
    python = result_fingerprint(replay(batch, point))
    oracle = result_fingerprint(
        TraceSimulator(config, upgraded_fraction=fraction, seed=seed).run(
            mix, instructions_per_core=instructions
        )
    )
    assert compiled == python, (mix.name, config.name, fraction, seed)
    assert python == oracle, (mix.name, config.name, fraction, seed)


class TestGoldenMatrix:
    @pytest.mark.parametrize("mix", ALL_MIXES, ids=lambda m: m.name)
    def test_all_mixes_all_fractions(self, mix):
        """12 mixes x 5 fractions, three ways each (60 cells)."""
        for fraction in FRACTIONS:
            three_way(mix, ARCC_MEMORY_CONFIG, fraction)

    @pytest.mark.parametrize(
        "config", CUSTOM_ORGANIZATIONS, ids=lambda c: c.name
    )
    def test_custom_organizations(self, config):
        """The scenario-file organizations, at their own Table 7.4
        device fraction (odd channel/rank/bank counts bend the route
        decode and the per-organization fraction alike)."""
        for fraction in (0.0, upgraded_page_fraction(FaultType.DEVICE, config)):
            three_way(mix_by_name("Mix3"), config, fraction)

    @pytest.mark.parametrize("seed", [1, 0xBEEF, 987654321])
    def test_non_default_seeds(self, seed):
        """Different seeds change every address/gap stream; identity
        must not depend on the default 0x7ACE materialization."""
        three_way(mix_by_name("Mix5"), ARCC_MEMORY_CONFIG, 0.37, seed=seed)


class TestDeepEvictionHeavyRuns:
    """300k-instruction runs on a 4-way LLC: sustained eviction load.

    The oracle leg is included — at this scale it is the most expensive
    cell of the matrix, so only two mixes run deep, chosen for opposite
    locality (Mix1 dense, Mix12 sparse).
    """

    @pytest.mark.parametrize("mix_name", ["Mix1", "Mix12"])
    @pytest.mark.parametrize("fraction", [0.0, 0.37])
    def test_deep_runs(self, mix_name, fraction):
        mix = mix_by_name(mix_name)
        batch = materialize_mix(mix, 0x7ACE, DEEP_INSTRUCTIONS)
        point = SweepPoint(
            config=ARCC_MEMORY_CONFIG, upgraded_fraction=fraction
        )
        compiled, stats = replay_compiled_stats(
            batch, point, EVICTION_HEAVY_PROCESSOR
        )
        python = replay(batch, point, EVICTION_HEAVY_PROCESSOR)
        assert result_fingerprint(compiled) == result_fingerprint(python)
        # The deep runs really are eviction-heavy: the kernel's
        # high-water mark sits at (or, with pair evictions dropping two
        # lines at once, a whisker under) capacity, never above it.
        cap = (
            EVICTION_HEAVY_PROCESSOR.l2_sets
            * EVICTION_HEAVY_PROCESSOR.l2_assoc
        )
        assert 0.9 * cap <= stats.max_occupancy <= cap
        assert stats.misses > cap
        assert stats.mirror_violations == 0

    def test_deep_run_against_oracle(self):
        """One full three-way cell at depth (the slow-but-decisive
        transitivity anchor for the 300k runs above)."""
        mix = mix_by_name("Mix1")
        batch = materialize_mix(mix, 0x7ACE, DEEP_INSTRUCTIONS)
        point = SweepPoint(config=ARCC_MEMORY_CONFIG, upgraded_fraction=0.37)
        compiled = result_fingerprint(replay_compiled(batch, point))
        oracle = result_fingerprint(
            TraceSimulator(
                ARCC_MEMORY_CONFIG, upgraded_fraction=0.37
            ).run(mix, instructions_per_core=DEEP_INSTRUCTIONS)
        )
        assert compiled == oracle
