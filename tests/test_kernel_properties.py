"""Hypothesis property tests on the compiled kernel's invariants.

The kernel self-audits its data structures as it runs (the
:class:`~repro.perf._kernel.KernelStats` counters are computed inside
the C loop, not reconstructed in Python), so these properties hold for
*any* drawn workload, seed, fraction, and LLC geometry — random
access/evict interleavings included, since every materialized trace is
one:

* LLC occupancy never exceeds ``sets x ways`` (the open-addressed
  table never over-fills a set);
* the paired-LRU recency mirror stays consistent — a hit on a paired
  line always finds its sibling resident with the same recency tick;
* stop-index termination is exact — each core consumes precisely its
  slice of the batch, at arbitrary instruction budgets.

Skips with the loader's reason when no C compiler is present.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ARCC_MEMORY_CONFIG, PROCESSOR_CONFIG
from repro.perf._kernel import (
    kernel_available,
    kernel_provenance,
    replay_compiled_stats,
)
from repro.perf.engine import SweepPoint, replay
from repro.perf.trace import materialize_mix
from repro.workloads.spec import ALL_MIXES

pytestmark = pytest.mark.skipif(
    not kernel_available(),
    reason=f"compiled replay kernel unavailable: {kernel_provenance()}",
)

#: Small LLC geometries (sets derive from line size; the replay only
#: reads ``l2_sets``/``l2_assoc``) so evictions and paired evictions
#: dominate even short drawn traces.
GEOMETRIES = st.tuples(
    st.sampled_from([1, 2, 4, 8]),  # ways
    st.sampled_from([256, 1024, 4096]),  # cacheline_bytes -> fewer sets
)

CASES = st.tuples(
    st.sampled_from(ALL_MIXES),
    st.integers(min_value=0, max_value=2**31 - 1),  # seed
    st.integers(min_value=200, max_value=3_000),  # instruction budget
    st.sampled_from([0.0, 0.0625, 0.25, 0.37, 0.5, 1.0]),
    GEOMETRIES,
)


def run_case(case):
    mix, seed, instructions, fraction, (ways, line_bytes) = case
    processor = dataclasses.replace(
        PROCESSOR_CONFIG, l2_assoc=ways, cacheline_bytes=line_bytes
    )
    batch = materialize_mix(mix, seed, instructions)
    point = SweepPoint(config=ARCC_MEMORY_CONFIG, upgraded_fraction=fraction)
    result, stats = replay_compiled_stats(batch, point, processor)
    return batch, processor, point, result, stats


class TestKernelInvariants:
    @settings(max_examples=30, deadline=None)
    @given(CASES)
    def test_occupancy_never_exceeds_capacity(self, case):
        _, processor, _, _, stats = run_case(case)
        assert (
            0
            <= stats.max_occupancy
            <= processor.l2_sets * processor.l2_assoc
        )

    @settings(max_examples=30, deadline=None)
    @given(CASES)
    def test_paired_lru_mirror_consistent(self, case):
        """Every hit on a paired line found its sibling resident with
        an identical recency tick (audited pre-restamp, in the loop)."""
        _, _, _, _, stats = run_case(case)
        assert stats.mirror_violations == 0

    @settings(max_examples=30, deadline=None)
    @given(CASES)
    def test_stop_index_termination_exact(self, case):
        """Cores stop exactly at their slice boundaries, and every
        access is classified exactly once."""
        batch, _, _, _, stats = run_case(case)
        assert stats.final_positions == tuple(
            int(v) for v in batch.core_offsets[1:]
        )
        assert stats.hits + stats.misses == batch.accesses

    @settings(max_examples=15, deadline=None)
    @given(CASES)
    def test_matches_python_replay(self, case):
        """The audited runs are also bit-identical to the Python tier
        (drawn geometries included — not just the default LLC)."""
        batch, processor, point, result, _ = run_case(case)
        assert result == replay(batch, point, processor)
