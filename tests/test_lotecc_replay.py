"""LOT-ECC checksum-replay mode of the batched trace engine.

The engine measures LOT-ECC's extra traffic directly instead of
scaling a fault-free run by the closed-form ``2(2r+2w)/(r+2w)``
factor: every DRAM write issues an extra checksum write burst, and
every upgraded fill additionally pays one checksum read per sub-line
on its critical path. These tests pin the mode's contract:

* it is implemented in the Python tier only — the compiled kernel
  refuses checksum points instead of silently dropping the traffic;
* turning it on strictly increases measured traffic — checksum bursts
  occupy the buses, so memory latency and core cycles rise even with
  zero upgrades, and upgraded fills pay checksum reads on top;
* the measured-overhead planner records the provenance: every LOT-ECC
  job is pinned to ``engine="python"`` with ``lotecc_checksum=True``
  in its cache key, and no other job carries the flag (their cache
  keys — shared with the Figure 7.1-7.3 sweeps — are unchanged).
"""

import pytest

from repro.config import ARCC_MEMORY_CONFIG
from repro.perf.engine import (
    BatchedTraceSimulator,
    MappingPolicy,
    SweepPoint,
    materialize_mix,
    replay_resolved,
)
from repro.perf.simulator import PROCESSOR_CONFIG
from repro.workloads.spec import ALL_MIXES

#: A mix whose 200k-instruction working set overflows the LLC, so
#: dirty evictions (and their checksum writes) actually occur.
MIX = ALL_MIXES[6]
N = 200_000


def _run(fraction: float, checksum: bool):
    return BatchedTraceSimulator(
        config=ARCC_MEMORY_CONFIG,
        upgraded_fraction=fraction,
        engine="python",
        lotecc_checksum=checksum,
    ).run(MIX, instructions_per_core=N)


class TestChecksumTierGuard:
    def test_compiled_tier_refuses_checksum_points(self):
        batch = materialize_mix(MIX, 0x7ACE, N)
        point = SweepPoint(
            config=ARCC_MEMORY_CONFIG, lotecc_checksum=True
        )
        with pytest.raises(RuntimeError, match="python"):
            replay_resolved(
                batch, point, PROCESSOR_CONFIG, MappingPolicy.HIPERF,
                "compiled",
            )

    def test_python_tier_accepts_checksum_points(self):
        result = _run(0.0, checksum=True)
        assert result.power.total_w > 0


class TestChecksumTraffic:
    def test_checksum_writes_slow_the_buses_even_without_upgrades(self):
        """Relaxed LOT-ECC doubles write traffic; the extra bursts
        occupy banks and buses, so later fills wait behind them even
        with zero upgraded pages."""
        plain = _run(0.0, checksum=False)
        checked = _run(0.0, checksum=True)
        assert (
            checked.average_memory_latency_ns
            > plain.average_memory_latency_ns
        )
        assert max(c.cycles for c in checked.cores) > max(
            c.cycles for c in plain.cores
        )

    def test_upgraded_fills_pay_checksum_reads_on_critical_path(self):
        plain = _run(0.5, checksum=False)
        checked = _run(0.5, checksum=True)
        assert (
            checked.average_memory_latency_ns
            > plain.average_memory_latency_ns
        )
        # The upgraded-fill checksum reads dominate the zero-upgrade
        # bus effect by an order of magnitude: they serialize on the
        # fill's critical path.
        no_upgrade_delta = (
            _run(0.0, checksum=True).average_memory_latency_ns
            - _run(0.0, checksum=False).average_memory_latency_ns
        )
        upgrade_delta = (
            checked.average_memory_latency_ns
            - plain.average_memory_latency_ns
        )
        assert upgrade_delta > 10 * no_upgrade_delta

    def test_checksum_mode_is_deterministic(self):
        assert _run(0.5, checksum=True) == _run(0.5, checksum=True)


class TestMeasuredProvenance:
    def test_lotecc_jobs_are_pinned_to_python_with_checksum_flag(self):
        from repro.fleet.measured import plan_measured_profiles

        plan = plan_measured_profiles(
            policies=("arcc", "lotecc"),
            mixes=[MIX],
            instructions_per_core=N,
        )
        lotecc_jobs = [
            job for job in plan.jobs if dict(job.config).get("lotecc_checksum")
        ]
        assert lotecc_jobs, "no LOT-ECC checksum jobs planned"
        for job in lotecc_jobs:
            config = dict(job.config)
            assert config["engine"] == "python"
            assert "lotecc" in job.name
        # Every other job's cache key is untouched by the new mode —
        # the flag is absent, not merely false.
        for job in plan.jobs:
            if job not in lotecc_jobs:
                assert "lotecc_checksum" not in dict(job.config)

    def test_relaxed_lotecc_baseline_is_planned_per_mix(self):
        from repro.fleet.measured import plan_measured_profiles

        plan = plan_measured_profiles(
            policies=("arcc", "lotecc"),
            mixes=[MIX],
            instructions_per_core=N,
        )
        relaxed = [j for j in plan.jobs if "lotecc-relaxed" in j.name]
        assert len(relaxed) == 1
        assert dict(relaxed[0].config)["upgraded_fraction"] == 0.0
