"""Tests for the perf -> fleet measured-overhead bridge.

The load-bearing guarantees: measured weights are bounded by the
worst-case arithmetic (the Figure 7.6 oracle) per fault class; the
same measurement serves ``fig7.4 --measured`` and ``fleet --measured``
through one process memo and shared cache keys; profiles parameterize
the policy comparison per (policy, organization) with the reliability
models untouched; and the whole pipeline — including the CLI over a
custom-organizations scenario file — is bit-identical at any worker
count and across a warm cache.
"""

import pytest

from repro.config import ARCC_MEMORY_CONFIG, BASELINE_MEMORY_CONFIG
from repro.core.lotecc_arcc import WORST_CASE_UPGRADE_FACTOR
from repro.faults.types import FaultType
from repro.fleet import (
    FleetScenario,
    MeasuredOverheadProfile,
    SubPopulation,
    clear_measured_memo,
    measure_scenario_profiles,
    measured_policy,
    plan_fleet_compare,
    plan_measured_profiles,
    resolve_policies,
    run_fleet_compare,
    run_measured_profiles,
)
from repro.fleet.measured import _lotecc_factor
from repro.runner import ResultCache, execute_plan
from repro.workloads.spec import ALL_MIXES

MIXES = ALL_MIXES[:3]
INSTRUCTIONS = 4_000


@pytest.fixture(autouse=True)
def _fresh_memo():
    """Each test starts without per-process measurement memos."""
    clear_measured_memo()
    yield
    clear_measured_memo()


@pytest.fixture(scope="module")
def profiles():
    clear_measured_memo()
    return run_measured_profiles(
        policies=("arcc", "sccdcd", "lotecc"),
        organizations=(ARCC_MEMORY_CONFIG,),
        mixes=MIXES,
        instructions_per_core=INSTRUCTIONS,
    )


class TestProfileReduction:
    def test_profiles_keyed_by_policy_and_organization(self, profiles):
        assert set(profiles) == {
            ("arcc", "ARCC"),
            ("sccdcd", "ARCC"),
            ("lotecc", "ARCC"),
        }

    def test_measured_below_worst_case_per_class(self, profiles):
        """The satellite ordering: measured <= worst-case cap, per class."""
        for profile in profiles.values():
            profile.validate_bounds()
            for ft, (mean, half) in profile.power.items():
                assert 0.0 <= mean <= profile.worst_case_power[ft]
                assert half >= 0.0
            for ft, (mean, half) in profile.performance.items():
                assert 0.0 <= mean <= profile.worst_case_performance[ft]

    def test_measured_weights_strictly_beat_worst_case(self, profiles):
        """Locality is real: the lane-class saving is substantial, not a
        rounding artifact (the paper's Figure 7.2/7.3 claim)."""
        arcc = profiles[("arcc", "ARCC")]
        lane_mean = arcc.power[FaultType.LANE][0]
        assert lane_mean < 0.8 * arcc.worst_case_power[FaultType.LANE]
        lot = profiles[("lotecc", "ARCC")]
        assert lot.power[FaultType.LANE][0] < 0.8 * lot.worst_case_power[
            FaultType.LANE
        ]

    def test_sccdcd_premium_is_arcc_lane_measurement(self, profiles):
        arcc = profiles[("arcc", "ARCC")]
        sccdcd = profiles[("sccdcd", "ARCC")]
        assert sccdcd.static_power == arcc.power[FaultType.LANE]
        assert not sccdcd.power  # nothing accrues per fault
        assert sccdcd.validate_bounds() is None

    def test_lotecc_factor_brackets(self):
        """All-reads recovers the worst case; writes soften it down to
        2x (both modes already pay the checksum write)."""
        assert _lotecc_factor(0.0) == pytest.approx(
            WORST_CASE_UPGRADE_FACTOR
        )
        assert _lotecc_factor(1.0) == pytest.approx(2.0)
        for w in (0.1, 0.3, 0.7):
            assert 2.0 < _lotecc_factor(w) < WORST_CASE_UPGRADE_FACTOR

    def test_caps_are_the_measured_saturation(self, profiles):
        arcc = profiles[("arcc", "ARCC")]
        assert arcc.power_cap == max(m for m, _ in arcc.power.values())
        assert arcc.performance_cap == max(
            m for m, _ in arcc.performance.values()
        )

    def test_single_channel_organization_rejected(self):
        import dataclasses

        one = dataclasses.replace(
            ARCC_MEMORY_CONFIG, name="one-ch", channels=1
        )
        with pytest.raises(ValueError, match="ARCC pairing"):
            plan_measured_profiles(organizations=(one,))

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError, match="unknown policy"):
            plan_measured_profiles(policies=("secded",))


class TestDeterminismAndCaching:
    def test_jobs_1_vs_4_identical(self):
        kwargs = dict(
            policies=("arcc", "lotecc"),
            organizations=(ARCC_MEMORY_CONFIG,),
            mixes=MIXES,
            instructions_per_core=INSTRUCTIONS,
        )
        a = run_measured_profiles(jobs=1, **kwargs)
        clear_measured_memo()
        b = run_measured_profiles(jobs=4, **kwargs)
        assert a == b

    def test_warm_cache_equals_cold_run(self, tmp_path):
        """The memoization satellite's regression: a second process-or-
        cache-mediated measurement reproduces the first exactly."""
        cache = ResultCache(tmp_path / "cache")
        kwargs = dict(
            policies=("arcc", "sccdcd", "lotecc"),
            organizations=(ARCC_MEMORY_CONFIG, BASELINE_MEMORY_CONFIG),
            mixes=MIXES,
            instructions_per_core=INSTRUCTIONS,
        )
        cold = run_measured_profiles(cache=cache, **kwargs)
        assert list((tmp_path / "cache").glob("*.pkl"))
        clear_measured_memo()
        warm = run_measured_profiles(cache=cache, **kwargs)
        assert cold == warm

    def test_process_memo_returns_same_object(self):
        kwargs = dict(
            policies=("arcc",),
            organizations=(ARCC_MEMORY_CONFIG,),
            mixes=MIXES[:1],
            instructions_per_core=2_000,
        )
        first = run_measured_profiles(**kwargs)
        assert run_measured_profiles(**kwargs) is first

    def test_measurement_jobs_share_cache_keys_with_fig7_2(self):
        """`fig7.4 --measured` and `fleet --measured` run through one
        cached computation: every fig7.2/7.3 point's cache key appears
        among the bridge's measurement jobs (names differ, keys agree)."""
        from repro.experiments.fig7_2_7_3 import plan_fig7_2_7_3

        cache = ResultCache("unused", version="pinned")
        bridge = plan_measured_profiles(
            policies=("arcc", "sccdcd", "lotecc"),
            organizations=(ARCC_MEMORY_CONFIG,),
            mixes=MIXES,
            instructions_per_core=INSTRUCTIONS,
        )
        fig = plan_fig7_2_7_3(
            mixes=MIXES, instructions_per_core=INSTRUCTIONS
        )
        bridge_keys = {cache.key(job) for job in bridge.jobs}
        fig_keys = {cache.key(job) for job in fig.jobs}
        assert fig_keys <= bridge_keys

    def test_measured_overheads_delegates_to_bridge_memo(self):
        from repro.experiments.fig7_4_7_5 import measured_overheads

        first = measured_overheads(
            mixes=MIXES[:1], instructions_per_core=2_000
        )
        assert measured_overheads(
            mixes=MIXES[:1], instructions_per_core=2_000
        ) is first
        assert set(first) == {
            FaultType.LANE,
            FaultType.DEVICE,
            FaultType.BANK,
            FaultType.COLUMN,
        }


class TestMeasuredPolicies:
    def test_measured_policy_swaps_costs_not_reliability(self, profiles):
        base = resolve_policies(("lotecc",))[0]
        measured = measured_policy(base, profiles[("lotecc", "ARCC")])
        assert measured.sdc_model == base.sdc_model
        assert measured.due_window == base.due_window
        assert measured.correction_window == base.correction_window
        assert measured.per_fault_power != base.per_fault_power
        assert measured.power_cap < base.power_cap
        assert "[measured]" in measured.title

    def test_mismatched_profile_rejected(self, profiles):
        base = resolve_policies(("arcc",))[0]
        with pytest.raises(ValueError, match="cannot parameterize"):
            measured_policy(base, profiles[("lotecc", "ARCC")])

    def test_plan_requires_profile_per_organization(self, profiles):
        scenario = FleetScenario(
            name="mixed-orgs",
            description="",
            populations=(
                SubPopulation(name="a", channels=64),
                SubPopulation(
                    name="b", channels=64, config=BASELINE_MEMORY_CONFIG
                ),
            ),
        )
        with pytest.raises(KeyError, match="Baseline-SCCDCD"):
            plan_fleet_compare(
                scenario, policies=("arcc",), profiles=profiles
            )


class TestMeasuredComparison:
    @pytest.fixture(scope="class")
    def report(self):
        clear_measured_memo()
        profiles = measure_scenario_profiles(
            "steady",
            policies=("arcc", "sccdcd", "lotecc"),
            mixes=MIXES,
            instructions_per_core=INSTRUCTIONS,
        )
        return run_fleet_compare(
            "steady", channels=400, seed=3, profiles=profiles
        )

    def test_report_carries_profiles(self, report):
        assert report.profiles is not None
        assert {(p.policy, p.organization) for p in report.profiles} == {
            ("arcc", "ARCC"),
            ("sccdcd", "ARCC"),
            ("lotecc", "ARCC"),
        }

    def test_table_shows_measured_weights_with_cis(self, report):
        table = report.to_table()
        assert "Measured per-fault weights" in table
        assert "±" in table
        assert "lotecc" in table
        assert "Worst case" in table

    def test_lotecc_measured_beats_its_worst_case_scoring(self, report):
        """The headline: with measured weights, adaptive LOT-ECC stays
        far below SCCDCD's constant premium."""
        lot = report.fleet_summary("lotecc")
        sccdcd = report.fleet_summary("sccdcd")
        assert lot.power_overhead[0] < sccdcd.power_overhead[0] / 5
        assert report.best_by("due") == "lotecc"

    def test_measured_run_matches_worst_case_reliability(self, report):
        """Measurement changes costs, never SDC/DUE physics."""
        worst = run_fleet_compare("steady", channels=400, seed=3)
        for policy in ("arcc", "sccdcd", "lotecc"):
            a = report.fleet_summary(policy)
            b = worst.fleet_summary(policy)
            assert a.sdc_events_per_year == b.sdc_events_per_year
            assert a.due_events_per_year == b.due_events_per_year

    def test_lotecc_measured_at_most_worst_case_scoring(self, report):
        """LOT-ECC's fallback really is the Figure 7.6 worst case, and
        measured weights are clamped to it per class, so its measured
        fleet overhead can never exceed the worst-case scoring. (No such
        structural bound exists for arcc/sccdcd — their fallback weights
        are themselves measurements recorded at another trace scale.)"""
        worst = run_fleet_compare("steady", channels=400, seed=3)
        assert (
            report.fleet_summary("lotecc").power_overhead[0]
            <= worst.fleet_summary("lotecc").power_overhead[0] + 1e-12
        )
        assert (
            report.fleet_summary("lotecc").performance_overhead[0]
            <= worst.fleet_summary("lotecc").performance_overhead[0] + 1e-12
        )

    def test_end_to_end_measured_flag_jobs_1_vs_4(self):
        kwargs = dict(
            scenario="steady",
            channels=300,
            seed=5,
            policies=("arcc", "lotecc"),
            measured=True,
            measured_instructions_per_core=2_000,
        )
        a = run_fleet_compare(jobs=1, **kwargs)
        clear_measured_memo()
        b = run_fleet_compare(jobs=4, **kwargs)
        assert [vars(s) for s in a.slices] == [vars(s) for s in b.slices]
        assert [vars(s) for s in a.fleet] == [vars(s) for s in b.fleet]
        assert a.profiles == b.profiles


class TestRegistryAndCli:
    def test_registry_exposes_fleet_compare_measured(self):
        from repro.runner.registry import FIGURES, build_plans

        assert "fleet-compare-measured" in FIGURES
        (plan,) = build_plans(["fleet-compare-measured"], quick=True)
        assert plan.name == "fleet-compare-measured"
        assert plan.jobs  # the measurement points

    def test_registry_plan_executes_to_measured_report(self):
        from repro.fleet import plan_fleet_compare_measured

        plan = plan_fleet_compare_measured(
            "steady",
            policies=("arcc", "lotecc"),
            channels=300,
            instructions_per_core=2_000,
        )
        report = execute_plan(plan)
        assert report.profiles
        assert "Measured per-fault weights" in report.to_table()

    def test_cli_measured_requires_policies(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="requires --policies"):
            main(["fleet", "steady", "--measured"])

    def test_cli_measured_custom_orgs_bit_identical_across_jobs(
        self, tmp_path, monkeypatch, capsys
    ):
        """The acceptance criterion: a scenario file with custom
        [organizations], --policies --measured, --jobs 1 == --jobs 4."""
        from pathlib import Path

        from repro.cli import main

        scenario = (
            Path(__file__).resolve().parent.parent
            / "examples"
            / "scenarios"
            / "custom_organizations.toml"
        )
        monkeypatch.chdir(tmp_path)  # keep .repro-cache out of the repo
        outputs = []
        for jobs in ("1", "4"):
            clear_measured_memo()
            code = main(
                [
                    "fleet",
                    "--scenario-file",
                    str(scenario),
                    "--policies",
                    "arcc,sccdcd,lotecc",
                    "--measured",
                    "--channels",
                    "300",
                    "--jobs",
                    jobs,
                ]
            )
            assert code == 0
            outputs.append(capsys.readouterr().out)
        strip = [
            "\n".join(
                line
                for line in out.splitlines()
                if not line.startswith("[repro fleet]")
            )
            for out in outputs
        ]
        assert strip[0] == strip[1]
        assert "Measured per-fault weights" in strip[0]
        assert "quad-x8" in strip[0]
        assert "(measured weights)" in outputs[0]

    def test_cli_measured_rejects_single_channel_org(
        self, tmp_path, monkeypatch
    ):
        from repro.cli import main

        path = tmp_path / "one.toml"
        path.write_text(
            """
name = "one"
[organizations.solo]
io_width = 8
channels = 1
ranks_per_channel = 2
devices_per_rank = 18
data_devices_per_rank = 16
[[populations]]
name = "a"
channels = 64
config = "solo"
"""
        )
        monkeypatch.chdir(tmp_path)
        with pytest.raises(SystemExit, match="ARCC pairing"):
            main(
                [
                    "fleet",
                    "--scenario-file",
                    str(path),
                    "--policies",
                    "arcc",
                    "--measured",
                ]
            )


class TestProfilesOverCustomOrganizations:
    def test_per_organization_fractions_flow_into_weights(self):
        """A tri-rank organization's device class upgrades 1/3 of pages,
        so its worst-case bound (and the measured clamp) follows."""
        import dataclasses

        tri = dataclasses.replace(
            BASELINE_MEMORY_CONFIG, name="tri-rank-x4", ranks_per_channel=3
        )
        profiles = run_measured_profiles(
            policies=("arcc",),
            organizations=(tri,),
            mixes=MIXES[:1],
            instructions_per_core=2_000,
        )
        profile = profiles[("arcc", "tri-rank-x4")]
        assert profile.worst_case_power[FaultType.DEVICE] == pytest.approx(
            1.0 / 3.0
        )
        profile.validate_bounds()

    def test_validate_bounds_catches_violations(self):
        profile = MeasuredOverheadProfile(
            policy="arcc",
            organization="ARCC",
            power={FaultType.LANE: (1.5, 0.0)},
            performance={},
            worst_case_power={FaultType.LANE: 1.0},
            worst_case_performance={},
        )
        with pytest.raises(ValueError, match="exceeds the worst-case"):
            profile.validate_bounds()


def test_exposure_report_names_organizations():
    """The fleet exposure summary now says which organization each
    slice runs (custom organizations are first-class everywhere)."""
    from repro.fleet import run_fleet

    report = run_fleet("mixed-generations", channels=300, seed=1)
    assert {r.organization for r in report.subpopulations} == {
        "ARCC",
        "Baseline-SCCDCD",
    }
    assert "Organization" in report.to_table()
