"""Vectorized Monte-Carlo engine: equivalence and consistency checks.

The array-based pairwise fast path must make *bit-identical policy
decisions* to the exact per-pair event loops on identical sampled
faults (``exact_pairs=True`` routes every channel through the event
loops). The legacy per-fault engine, which samples differently but
implements the same physics, must agree statistically.
"""

import numpy as np
import pytest

from repro.faults.types import DEVICE_LEVEL_TYPES
from repro.reliability.analytical import ReliabilityParams
from repro.reliability.montecarlo import (
    MonteCarloReliability,
    _pairs_intersect,
    _sample_batch,
    merge_outcomes,
)


def _outcome_tuple(outcome):
    return (
        outcome.sdc_machines_arcc,
        outcome.sdc_machines_sccdcd,
        outcome.due_machines_sccdcd,
        outcome.due_machines_sparing,
    )


class TestPairwiseFastPathEquivalence:
    @pytest.mark.parametrize(
        "multiplier,seed,channels",
        [
            (4.0, 11, 2000),
            (80.0, 12, 800),
            (400.0, 13, 300),
            (1500.0, 14, 100),
        ],
    )
    def test_bit_identical_to_event_loop(self, multiplier, seed, channels):
        mc = MonteCarloReliability(
            ReliabilityParams(rate_multiplier=multiplier), seed=seed
        )
        fast = mc.run(channels, 7.0)
        exact = mc.run(channels, 7.0, exact_pairs=True)
        assert _outcome_tuple(fast) == _outcome_tuple(exact)


class TestVectorizedIntersection:
    def test_matches_scalar_method_on_random_faults(self):
        """Array intersection == object intersection, fault by fault."""
        params = ReliabilityParams(rate_multiplier=3000.0)
        mc = MonteCarloReliability(params, seed=99)
        rng = np.random.Generator(np.random.PCG64(99))
        batch = _sample_batch(params, rng, channels=4, years=7.0)
        for channel in range(4):
            start = int(batch.offsets[channel])
            stop = int(batch.offsets[channel + 1])
            faults = batch.channel_faults(channel)
            for i in range(stop - start):
                for j in range(i + 1, stop - start):
                    expected = faults[i].footprint_intersects(faults[j])
                    got = bool(
                        _pairs_intersect(
                            batch,
                            np.array([start + i]),
                            np.array([start + j]),
                        )[0]
                    )
                    assert got == expected, (channel, i, j)

    def test_sampled_coordinates_in_range(self):
        params = ReliabilityParams(rate_multiplier=500.0)
        rng = np.random.Generator(np.random.PCG64(7))
        batch = _sample_batch(params, rng, channels=16, years=7.0)
        assert batch.time_hours.min() >= 0.0
        assert batch.rank.max() < params.ranks
        assert batch.device.max() < params.devices_per_rank
        assert batch.bank.max() < params.banks
        assert batch.row.max() < params.rows
        assert batch.column.max() < params.columns
        assert set(np.unique(batch.type_code)) <= set(
            range(len(DEVICE_LEVEL_TYPES))
        )

    def test_times_sorted_within_channels(self):
        params = ReliabilityParams(rate_multiplier=500.0)
        rng = np.random.Generator(np.random.PCG64(8))
        batch = _sample_batch(params, rng, channels=16, years=7.0)
        for channel in range(16):
            start = int(batch.offsets[channel])
            stop = int(batch.offsets[channel + 1])
            times = batch.time_hours[start:stop]
            assert np.all(np.diff(times) >= 0)


class TestMergeOutcomes:
    def test_merge_sums_counts(self):
        mc = MonteCarloReliability(
            ReliabilityParams(rate_multiplier=100.0), seed=5
        )
        jobs = mc.block_jobs(channels=300, years=7.0)
        partials = [job.execute() for job in jobs]
        merged = merge_outcomes(300, 7.0, partials)
        direct = mc.run(300, 7.0)
        assert _outcome_tuple(merged) == _outcome_tuple(direct)
        assert merged.channels == 300


@pytest.mark.mc
class TestLegacyAgreement:
    """The legacy engine samples differently but must agree statistically."""

    def test_due_rates_agree_within_sampling_noise(self):
        params = ReliabilityParams(rate_multiplier=200.0)
        channels, years = 2000, 7.0
        fast = MonteCarloReliability(params, seed=21).run(channels, years)
        legacy = MonteCarloReliability(params, seed=22).run_legacy(
            channels, years
        )
        a = fast.due_machines_sccdcd
        b = legacy.due_machines_sccdcd
        assert a > 0 and b > 0
        # Binomial populations of ~2000: agree within 5 sigma.
        sigma = np.sqrt(max(a, b))
        assert abs(a - b) < 5 * sigma + 5

    def test_orderings_hold_in_both_engines(self):
        params = ReliabilityParams(rate_multiplier=400.0)
        for outcome in (
            MonteCarloReliability(params, seed=31).run(400, 7.0),
            MonteCarloReliability(params, seed=31).run_legacy(400, 7.0),
        ):
            assert outcome.due_machines_sccdcd >= outcome.due_machines_sparing
            assert outcome.sdc_machines_arcc >= outcome.sdc_machines_sccdcd
