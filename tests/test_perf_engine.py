"""Golden-equivalence and property tests for the batched trace engine.

The batched engine (:mod:`repro.perf.engine`) must be *bit-identical*
to the legacy oracle ``TraceSimulator.run`` — same per-core instruction
and cycle counts, same miss counts, same power totals — not merely
close: every figure now runs on it, so any drift is a silent change to
the reproduction. The tests here hold that line for all 12 Table 7.3
mixes at quick scale, for both Table 7.1 organizations, across the
Table 7.4 fault fractions, and at a deeper scale where LLC sets
saturate and the eviction/writeback machinery is exercised.
"""

import numpy as np
import pytest

from repro.config import ARCC_MEMORY_CONFIG, BASELINE_MEMORY_CONFIG
from repro.dram.addressing import AddressMapping, MappingPolicy
from repro.faults.models import TABLE_7_4_TYPES, upgraded_page_fraction
from repro.perf.engine import (
    BatchedTraceSimulator,
    SweepPoint,
    decode_lines,
    replay,
    simulate_point_job,
    sweep,
    upgraded_page_flags,
)
from repro.perf.simulator import TraceSimulator, page_is_upgraded
from repro.perf.trace import materialize_mix
from repro.workloads.spec import ALL_MIXES, mix_by_name
from repro.workloads.trace import CoreTrace, TraceGenerator

#: Quick scale of the golden sweep (the registry's --quick setting).
QUICK_INSTRUCTIONS = 20_000

#: The Figure 7.2/7.3 sweep points: fault-free plus every Table 7.4 type.
SWEEP_FRACTIONS = [0.0] + [
    upgraded_page_fraction(ft) for ft in TABLE_7_4_TYPES
]


def result_fingerprint(result):
    """Everything a MixResult exposes, as an exactly-comparable tuple."""
    return (
        [(c.benchmark, c.instructions, c.cycles) for c in result.cores],
        result.power.total_w,
        result.power.background_w,
        result.power.dynamic_w,
        tuple(result.power.per_rank_w),
        result.llc_miss_rate,
        result.average_memory_latency_ns,
    )


class TestGoldenEquivalence:
    @pytest.mark.parametrize("mix", ALL_MIXES, ids=lambda m: m.name)
    def test_all_mixes_all_fractions_bit_identical(self, mix):
        """The acceptance criterion: every (mix, fraction) at quick scale."""
        for fraction in SWEEP_FRACTIONS:
            legacy = TraceSimulator(
                ARCC_MEMORY_CONFIG, upgraded_fraction=fraction
            ).run(mix, instructions_per_core=QUICK_INSTRUCTIONS)
            batched = BatchedTraceSimulator(
                ARCC_MEMORY_CONFIG, upgraded_fraction=fraction
            ).run(mix, instructions_per_core=QUICK_INSTRUCTIONS)
            assert result_fingerprint(legacy) == result_fingerprint(
                batched
            ), (mix.name, fraction)

    @pytest.mark.parametrize("mix", ALL_MIXES[:4], ids=lambda m: m.name)
    def test_baseline_organization_bit_identical(self, mix):
        legacy = TraceSimulator(BASELINE_MEMORY_CONFIG).run(
            mix, instructions_per_core=QUICK_INSTRUCTIONS
        )
        batched = BatchedTraceSimulator(BASELINE_MEMORY_CONFIG).run(
            mix, instructions_per_core=QUICK_INSTRUCTIONS
        )
        assert result_fingerprint(legacy) == result_fingerprint(batched)

    def test_eviction_heavy_scale_bit_identical(self):
        """Deep run: LLC sets saturate, evictions and writebacks flow.

        Mix10 is the most memory-intensive mix; at 300k instructions its
        working set overfills many LLC sets, so this exercises victim
        selection, paired evictions and writeback traffic — the paths a
        quick-scale run barely touches.
        """
        mix = mix_by_name("Mix10")
        for fraction in (0.0, 1.0):
            legacy = TraceSimulator(
                ARCC_MEMORY_CONFIG, upgraded_fraction=fraction
            ).run(mix, instructions_per_core=300_000)
            batched = BatchedTraceSimulator(
                ARCC_MEMORY_CONFIG, upgraded_fraction=fraction
            ).run(mix, instructions_per_core=300_000)
            assert result_fingerprint(legacy) == result_fingerprint(
                batched
            ), fraction

    def test_nondefault_seed_bit_identical(self):
        mix = mix_by_name("Mix3")
        legacy = TraceSimulator(
            ARCC_MEMORY_CONFIG, upgraded_fraction=0.5, seed=1234
        ).run(mix, instructions_per_core=QUICK_INSTRUCTIONS)
        batched = BatchedTraceSimulator(
            ARCC_MEMORY_CONFIG, upgraded_fraction=0.5, seed=1234
        ).run(mix, instructions_per_core=QUICK_INSTRUCTIONS)
        assert result_fingerprint(legacy) == result_fingerprint(batched)

    def test_sweep_matches_individual_replays(self):
        mix = mix_by_name("Mix2")
        batch = materialize_mix(mix, 0x7ACE, QUICK_INSTRUCTIONS)
        points = [
            SweepPoint(upgraded_fraction=f) for f in (0.0, 0.5, 1.0)
        ] + [SweepPoint(config=BASELINE_MEMORY_CONFIG)]
        swept = sweep(batch, points)
        for point, result in zip(points, swept):
            assert result_fingerprint(result) == result_fingerprint(
                replay(batch, point)
            )

    def test_upgrades_require_arcc(self):
        with pytest.raises(ValueError):
            BatchedTraceSimulator(
                ARCC_MEMORY_CONFIG, upgraded_fraction=0.5, arcc_enabled=False
            )
        batch = materialize_mix(mix_by_name("Mix1"), 0x7ACE, 1_000)
        with pytest.raises(ValueError):
            replay(batch, SweepPoint(upgraded_fraction=0.5, arcc_enabled=False))

    def test_odd_channel_counts_simulate_like_the_oracle(self):
        """Sub-lines share a channel iff channels == 1, not 'odd'.

        A three-channel organization interleaves siblings onto
        different channels (addr and addr^1 differ by one), so it must
        simulate — identically to the oracle — rather than be rejected.
        """
        import dataclasses

        config3 = dataclasses.replace(
            ARCC_MEMORY_CONFIG, name="ARCC-3ch", channels=3
        )
        mix = mix_by_name("Mix1")
        legacy = TraceSimulator(config3, upgraded_fraction=0.25).run(
            mix, instructions_per_core=5_000
        )
        batched = BatchedTraceSimulator(config3, upgraded_fraction=0.25).run(
            mix, instructions_per_core=5_000
        )
        assert result_fingerprint(legacy) == result_fingerprint(batched)

    def test_single_channel_paired_access_raises_like_the_oracle(self):
        """One channel cannot serve both sub-lines: RuntimeError, lazily."""
        import dataclasses

        config1 = dataclasses.replace(
            ARCC_MEMORY_CONFIG, name="ARCC-1ch", channels=1
        )
        mix = mix_by_name("Mix1")
        legacy = TraceSimulator(
            config1, upgraded_fraction=1.0, arcc_enabled=True
        )
        batched = BatchedTraceSimulator(
            config1, upgraded_fraction=1.0, arcc_enabled=True
        )
        with pytest.raises(RuntimeError):
            legacy.run(mix, instructions_per_core=2_000)
        with pytest.raises(RuntimeError):
            batched.run(mix, instructions_per_core=2_000)

    def test_point_job_returns_plain_floats(self):
        """The runner-job payload must be small and picklable."""
        payload = simulate_point_job(
            mix=mix_by_name("Mix1"),
            config=ARCC_MEMORY_CONFIG,
            upgraded_fraction=0.0625,
            instructions_per_core=5_000,
            seed=0x7ACE,
        )
        assert set(payload) == {
            "power_w",
            "background_w",
            "dynamic_w",
            "performance",
            "llc_miss_rate",
            "average_memory_latency_ns",
        }
        assert all(isinstance(v, float) for v in payload.values())


class TestTraceMaterialization:
    def test_access_for_access_agreement_with_core_trace(self):
        """The arrays hold exactly what the iterators would have drawn."""
        mix = mix_by_name("Mix5")
        batch = materialize_mix(mix, seed=77, instructions_per_core=10_000)
        traces = TraceGenerator(mix.profiles, seed=77).core_traces()
        for core, trace in enumerate(traces):
            view = batch.core_slice(core)
            addresses = batch.line_addresses[view].tolist()
            writes = batch.write_flags[view].tolist()
            gaps = batch.instruction_gaps[view].tolist()
            total = 0
            for i in range(len(addresses)):
                access = next(trace)
                assert access.line_address == addresses[i]
                assert access.is_write == writes[i]
                assert access.instructions_since_last == gaps[i]
                total += access.instructions_since_last
            # The stopping rule is the legacy loop's: the core retires
            # its quota exactly at the last materialized access.
            assert total >= 10_000
            assert total - gaps[-1] < 10_000

    def test_memoized_by_value(self):
        a = materialize_mix(mix_by_name("Mix1"), 5, 2_000)
        b = materialize_mix(mix_by_name("Mix1"), 5, 2_000)
        c = materialize_mix(mix_by_name("Mix1"), 6, 2_000)
        assert a is b
        assert c is not a

    def test_gap_cycles_matches_scalar_division(self):
        batch = materialize_mix(mix_by_name("Mix4"), 9, 2_000)
        gap_cycles = batch.gap_cycles()
        for core, profile in enumerate(batch.profiles):
            view = batch.core_slice(core)
            for gap, cycles in zip(
                batch.instruction_gaps[view].tolist(),
                gap_cycles[view].tolist(),
            ):
                assert cycles == gap / profile.base_ipc


class TestPageUpgradeProperties:
    """Satellite: property tests for the golden-ratio classifier."""

    def test_fraction_zero_upgrades_nothing(self):
        for page in range(0, 100_000, 97):
            assert not page_is_upgraded(page, 0.0)
        assert not upgraded_page_flags(np.arange(10_000), 0.0).any()

    def test_fraction_one_upgrades_everything(self):
        for page in range(0, 100_000, 97):
            assert page_is_upgraded(page, 1.0)
        assert upgraded_page_flags(np.arange(10_000), 1.0).all()

    def test_upgraded_set_monotone_in_fraction(self):
        """A page upgraded at fraction f stays upgraded at every f' > f."""
        pages = np.arange(200_000)
        fractions = (0.01, 0.03125, 0.0625, 0.125, 0.25, 0.5, 0.9)
        previous = upgraded_page_flags(pages, 0.0)
        for fraction in fractions:
            current = upgraded_page_flags(pages, fraction)
            assert not (previous & ~current).any(), fraction
            assert current.sum() >= previous.sum()
            previous = current

    def test_empirical_density_matches_fraction(self):
        """The hash spreads the fraction uniformly over a big page range."""
        pages = np.arange(400_000)
        for fraction in (0.03125, 0.0625, 0.25, 0.5, 0.75):
            density = upgraded_page_flags(pages, fraction).mean()
            assert abs(density - fraction) < 0.01, fraction

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(3)
        pages = rng.integers(0, 1 << 24, size=4_000)
        for fraction in (0.0, 1e-9, 0.03125, 0.5, 0.999999, 1.0):
            flags = upgraded_page_flags(pages, fraction)
            scalar = [page_is_upgraded(int(p), fraction) for p in pages]
            assert flags.tolist() == scalar, fraction

    def test_deterministic_across_calls(self):
        pages = np.arange(5_000)
        a = upgraded_page_flags(pages, 0.3)
        b = upgraded_page_flags(pages, 0.3)
        assert (a == b).all()


class TestDecodeLines:
    @pytest.mark.parametrize("policy", list(MappingPolicy))
    @pytest.mark.parametrize(
        "config", (ARCC_MEMORY_CONFIG, BASELINE_MEMORY_CONFIG),
        ids=lambda c: c.name,
    )
    def test_matches_scalar_decoder(self, policy, config):
        mapping = AddressMapping(config, policy)
        rng = np.random.default_rng(11)
        addresses = rng.integers(0, 1 << 24, size=2_000)
        channel, rank, bank = decode_lines(addresses, config, policy)
        for i, address in enumerate(addresses.tolist()):
            decoded = mapping.decode(address)
            assert channel[i] == decoded.channel
            assert rank[i] == decoded.rank
            assert bank[i] == decoded.bank

    def test_sibling_lands_on_other_channel(self):
        """The property the paired fetch depends on (Figure 4.1)."""
        addresses = np.arange(4_096)
        channel, _, _ = decode_lines(addresses, ARCC_MEMORY_CONFIG)
        sibling_channel, _, _ = decode_lines(
            addresses ^ 1, ARCC_MEMORY_CONFIG
        )
        assert (channel != sibling_channel).all()


class TestUpgradedPagesSeeTraffic:
    def test_upgraded_fraction_changes_power(self):
        """Sanity: the sweep points actually differ (not vacuous tests)."""
        mix = mix_by_name("Mix1")
        batch = materialize_mix(mix, 0x7ACE, QUICK_INSTRUCTIONS)
        clean, faulty = sweep(
            batch,
            [SweepPoint(upgraded_fraction=0.0), SweepPoint(upgraded_fraction=1.0)],
        )
        assert faulty.power.total_w > clean.power.total_w

    def test_lines_per_page_matches_trace_constant(self):
        """The classifier pages on CoreTrace.LINES_PER_PAGE (64 lines)."""
        assert CoreTrace.LINES_PER_PAGE == 64
        # Any two lines of one page share an upgrade decision.
        for fraction in (0.25, 0.5):
            base = 1234 * CoreTrace.LINES_PER_PAGE
            decisions = {
                page_is_upgraded(
                    (base + offset) // CoreTrace.LINES_PER_PAGE, fraction
                )
                for offset in range(CoreTrace.LINES_PER_PAGE)
            }
            assert len(decisions) == 1
