"""Tests for the protection-policy comparison (:mod:`repro.fleet.policies`).

The load-bearing guarantees: all policies score *identical* fault
histories (a paired comparison, bit-identical at any worker count); the
cost/reliability orderings match the paper's claims (ARCC cheapest,
SCCDCD strongest detection, LOT-ECC's sparing-class DUE win); and the
uncorrectable-pair screen obeys the window/rank/device rules.
"""

import numpy as np
import pytest

from repro.faults.types import FaultType
from repro.fleet import (
    DEFAULT_POLICY_KEYS,
    POLICY_KEYS,
    FleetScenario,
    SubPopulation,
    plan_fleet_compare,
    resolve_policies,
    run_fleet_compare,
)
from repro.fleet.events import FAULT_TYPE_ORDER, FaultEventBatch
from repro.fleet.policies import (
    policy_due_per_1k,
    policy_sdc_per_1k,
    slice_reliability_params,
    uncorrectable_candidate_channels,
)


def _batch(rows):
    """Build a batch from (member, time_hours, type, channel, rank, device)."""
    rows = sorted(rows, key=lambda r: (r[0], r[1]))
    members = max(r[0] for r in rows) + 1
    counts = np.bincount([r[0] for r in rows], minlength=members)
    return FaultEventBatch(
        offsets=np.concatenate(([0], np.cumsum(counts))).astype(np.int64),
        time_hours=np.array([r[1] for r in rows], dtype=np.float64),
        type_code=np.array(
            [FAULT_TYPE_ORDER.index(r[2]) for r in rows], dtype=np.int64
        ),
        channel=np.array([r[3] for r in rows], dtype=np.int64),
        rank=np.array([r[4] for r in rows], dtype=np.int64),
        device=np.array([r[5] for r in rows], dtype=np.int64),
    )


class TestPolicyRegistry:
    def test_known_keys(self):
        assert POLICY_KEYS == ("arcc", "sccdcd", "lotecc")
        assert DEFAULT_POLICY_KEYS == POLICY_KEYS

    def test_resolve_builds_all(self):
        policies = resolve_policies(POLICY_KEYS)
        assert [p.key for p in policies] == list(POLICY_KEYS)

    def test_unknown_key_suggests(self):
        with pytest.raises(KeyError, match="did you mean 'arcc'"):
            resolve_policies(["arccc"])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            resolve_policies(["arcc", "arcc"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            resolve_policies([])

    def test_arcc_accumulates_sccdcd_pays_upfront(self):
        arcc, sccdcd = resolve_policies(["arcc", "sccdcd"])
        assert arcc.static_power_overhead == 0.0
        assert arcc.per_fault_power[FaultType.LANE] > 0
        assert sccdcd.static_power_overhead > 0
        assert not sccdcd.per_fault_power
        # SCCDCD's constant premium is ARCC's fully-upgraded asymptote.
        assert sccdcd.static_power_overhead == pytest.approx(
            arcc.per_fault_power[FaultType.LANE]
        )


class TestSliceReliability:
    POP = SubPopulation(name="x", channels=100, rate_multiplier=2.0)

    def test_params_cover_one_channel(self):
        """Closed forms run per channel: codewords (and lane faults)
        never span the independent channels of a memory system, matching
        the MC screen's same-channel rule."""
        params = slice_reliability_params(self.POP)
        cfg = self.POP.config
        assert params.devices_per_rank == cfg.devices_per_rank
        assert params.ranks == cfg.ranks_per_channel
        assert params.total_devices == cfg.total_devices // cfg.channels
        assert params.rate_multiplier == pytest.approx(2.0)

    def test_machine_rate_scales_with_channel_count(self):
        """Doubling the channels of a (hypothetical) system ~doubles the
        per-machine SDC rate: channels contribute independently."""
        from dataclasses import replace

        arcc = resolve_policies(["arcc"])[0]
        one = SubPopulation(
            name="one",
            channels=10,
            config=replace(self.POP.config, channels=1),
        )
        two = SubPopulation(name="two", channels=10)
        assert policy_sdc_per_1k(arcc, two) == pytest.approx(
            2 * policy_sdc_per_1k(arcc, one), rel=1e-6
        )

    def test_schedule_enters_as_time_weighted_mean(self):
        from repro.fleet import RatePhase

        pop = SubPopulation(
            name="x",
            channels=100,
            lifespan_years=4.0,
            schedule=(RatePhase(duration_years=1.0, multiplier=5.0),),
        )
        params = slice_reliability_params(pop)
        # (1y * 5x + 3y * 1x) / 4y = 2x
        assert params.rate_multiplier == pytest.approx(2.0)

    def test_sccdcd_sdc_far_below_arcc(self):
        arcc, sccdcd, lotecc = resolve_policies(POLICY_KEYS)
        assert policy_sdc_per_1k(sccdcd, self.POP) < policy_sdc_per_1k(
            arcc, self.POP
        )
        # Relaxed detection: ARCC and ARCC+LOT-ECC share the pair race.
        assert policy_sdc_per_1k(lotecc, self.POP) == pytest.approx(
            policy_sdc_per_1k(arcc, self.POP)
        )

    def test_lotecc_due_an_order_of_magnitude_better(self):
        arcc, sccdcd, lotecc = resolve_policies(POLICY_KEYS)
        due_arcc = policy_due_per_1k(arcc, self.POP)
        due_lotecc = policy_due_per_1k(lotecc, self.POP)
        assert due_arcc == pytest.approx(policy_due_per_1k(sccdcd, self.POP))
        # The paper cites ~17x from gaining double chip sparing.
        assert due_arcc / due_lotecc > 10


class TestUncorrectablePairScreen:
    def test_pair_in_window_flags_channel(self):
        batch = _batch(
            [
                (0, 10.0, FaultType.DEVICE, 0, 0, 1),
                (0, 20.0, FaultType.DEVICE, 0, 0, 2),
            ]
        )
        assert uncorrectable_candidate_channels(batch, 100.0).tolist() == [True]

    def test_pair_outside_window_is_safe(self):
        batch = _batch(
            [
                (0, 10.0, FaultType.DEVICE, 0, 0, 1),
                (0, 500.0, FaultType.DEVICE, 0, 0, 2),
            ]
        )
        assert uncorrectable_candidate_channels(batch, 100.0).tolist() == [
            False
        ]

    def test_same_device_is_one_symbol(self):
        batch = _batch(
            [
                (0, 10.0, FaultType.ROW, 0, 0, 3),
                (0, 20.0, FaultType.BANK, 0, 0, 3),
            ]
        )
        assert uncorrectable_candidate_channels(batch, 100.0).tolist() == [
            False
        ]

    def test_different_rank_does_not_share_codewords(self):
        batch = _batch(
            [
                (0, 10.0, FaultType.DEVICE, 0, 0, 1),
                (0, 20.0, FaultType.DEVICE, 0, 1, 2),
            ]
        )
        assert uncorrectable_candidate_channels(batch, 100.0).tolist() == [
            False
        ]

    def test_lane_spans_ranks_of_its_channel(self):
        batch = _batch(
            [
                (0, 10.0, FaultType.LANE, 0, 0, 1),
                (0, 20.0, FaultType.DEVICE, 0, 1, 2),
            ]
        )
        assert uncorrectable_candidate_channels(batch, 100.0).tolist() == [True]

    def test_different_memory_channels_independent(self):
        batch = _batch(
            [
                (0, 10.0, FaultType.LANE, 0, 0, 1),
                (0, 20.0, FaultType.DEVICE, 1, 0, 2),
            ]
        )
        assert uncorrectable_candidate_channels(batch, 100.0).tolist() == [
            False
        ]

    def test_bit_faults_never_defeat_correction(self):
        batch = _batch(
            [
                (0, 10.0, FaultType.BIT, 0, 0, 1),
                (0, 20.0, FaultType.BIT, 0, 0, 2),
            ]
        )
        assert uncorrectable_candidate_channels(batch, 100.0).tolist() == [
            False
        ]

    def test_per_member_isolation(self):
        batch = _batch(
            [
                (0, 10.0, FaultType.DEVICE, 0, 0, 1),
                (1, 20.0, FaultType.DEVICE, 0, 0, 2),
                (2, 10.0, FaultType.DEVICE, 0, 0, 1),
                (2, 30.0, FaultType.DEVICE, 0, 0, 4),
            ]
        )
        assert uncorrectable_candidate_channels(batch, 100.0).tolist() == [
            False,
            False,
            True,
        ]


class TestComparisonReport:
    @pytest.fixture(scope="class")
    def report(self):
        return run_fleet_compare(
            "mixed-generations", channels=1200, seed=0xC0FFEE
        )

    def test_structure(self, report):
        assert report.policies == list(POLICY_KEYS)
        assert {row.slice_name for row in report.slices} == {
            "arcc-new",
            "arcc-midlife",
            "legacy-x4",
        }
        assert len(report.slices) == 3 * len(POLICY_KEYS)
        assert len(report.fleet) == len(POLICY_KEYS)
        assert report.total_channels == pytest.approx(1200, abs=2)

    def test_every_mean_has_ci(self, report):
        for row in report.slices:
            for mean, half in (
                row.power_overhead,
                row.performance_overhead,
                row.uncorrectable_fraction,
            ):
                assert mean >= 0.0
                assert half >= 0.0
            assert row.sdc_per_1k_machine_years >= 0.0
            assert row.due_per_1k_machine_years >= 0.0

    def test_paper_orderings_hold(self, report):
        arcc = report.fleet_summary("arcc")
        sccdcd = report.fleet_summary("sccdcd")
        lotecc = report.fleet_summary("lotecc")
        # ARCC's accumulated overhead stays far below SCCDCD's premium.
        assert arcc.power_overhead[0] < sccdcd.power_overhead[0]
        # Strong detection wins SDC; sparing wins DUE.
        assert sccdcd.sdc_events_per_year < arcc.sdc_events_per_year
        assert lotecc.due_events_per_year < arcc.due_events_per_year
        assert report.best_by("power") == "arcc"
        assert report.best_by("sdc") == "sccdcd"
        assert report.best_by("due") == "lotecc"

    def test_arcc_and_sccdcd_due_identical(self, report):
        # Section 6.1: ARCC does not change the base code's DUE story.
        for name in ("arcc-new", "legacy-x4"):
            assert report.slice_report(
                "arcc", name
            ).due_per_1k_machine_years == pytest.approx(
                report.slice_report("sccdcd", name).due_per_1k_machine_years
            )

    def test_table_renders(self, report):
        table = report.to_table()
        assert "Policy comparison 'mixed-generations'" in table
        assert "Fleet decision table" in table
        assert "±" in table
        for key in POLICY_KEYS:
            assert key in table
        assert "Lowest power:" in table

    def test_lookup_errors(self, report):
        with pytest.raises(KeyError):
            report.fleet_summary("secded")
        with pytest.raises(KeyError):
            report.slice_report("arcc", "no-such-slice")
        with pytest.raises(KeyError):
            report.best_by("vibes")

    def test_jobs_1_vs_4_identical(self):
        kwargs = dict(
            scenario="harsh-environment",
            policies=("arcc", "lotecc"),
            channels=600,
            seed=3,
        )
        a = run_fleet_compare(jobs=1, **kwargs)
        b = run_fleet_compare(jobs=4, **kwargs)
        assert [vars(s) for s in a.slices] == [vars(s) for s in b.slices]
        assert [vars(s) for s in a.fleet] == [vars(s) for s in b.fleet]

    def test_policy_subset_and_order_respected(self):
        report = run_fleet_compare(
            "steady", policies=("lotecc", "arcc"), channels=200
        )
        assert report.policies == ["lotecc", "arcc"]
        assert [s.policy for s in report.fleet] == ["lotecc", "arcc"]


class TestPairedSampling:
    def test_policies_share_block_seeds(self):
        """Every policy's jobs for a slice carry identical block seeds."""
        plan = plan_fleet_compare(
            "mixed-generations", policies=POLICY_KEYS, channels=1500
        )
        seeds = {}
        for job in plan.jobs:
            config = dict(job.config)
            slice_block = (
                job.name.split("/")[1],
                config["block_seed"],
                config["channels"],
            )
            seeds.setdefault(slice_block[0], set()).add(slice_block[1:])
        counts = {name: len(blocks) for name, blocks in seeds.items()}
        # One distinct (seed, size) set per slice, shared by all policies.
        assert len(plan.jobs) == len(POLICY_KEYS) * sum(counts.values())

    def test_custom_scenario_object(self):
        scenario = FleetScenario(
            name="tiny-compare",
            description="doc",
            populations=(SubPopulation(name="only", channels=100),),
        )
        report = run_fleet_compare(scenario, policies=("arcc",))
        assert report.scenario == "tiny-compare"
        assert len(report.slices) == 1


class TestRegistryAndCLI:
    def test_registry_exposes_fleet_compare(self):
        from repro.runner.registry import FIGURES, build_plans

        assert "fleet-compare" in FIGURES
        (plan,) = build_plans(["fleet-compare"], quick=True)
        assert plan.name == "fleet-compare"
        assert plan.jobs

    def test_cli_policies_flag(self, capsys):
        from repro.cli import main

        code = main(
            ["fleet", "steady", "--policies", "arcc,sccdcd", "--channels", "200"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Policy comparison 'steady'" in out
        assert "Fleet decision table" in out

    def test_cli_unknown_policy_suggests(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="did you mean 'sccdcd'"):
            main(["fleet", "steady", "--policies", "sccdc"])

    def test_cli_policies_tolerate_spaces(self, capsys):
        from repro.cli import main

        code = main(
            ["fleet", "steady", "--policies", "arcc, lotecc", "--channels", "100"]
        )
        assert code == 0
        assert "Policy comparison 'steady'" in capsys.readouterr().out

    def test_cli_empty_policies_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="at least one policy"):
            main(["fleet", "steady", "--policies", ","])

    def test_cli_list_mentions_policies_and_descriptions(self, capsys):
        from repro.cli import main

        assert main(["fleet", "--list"]) == 0
        out = capsys.readouterr().out
        from repro.fleet import DEFAULT_SCENARIOS

        for scenario in DEFAULT_SCENARIOS.values():
            assert scenario.name in out
            assert scenario.description in out
            for pop in scenario.populations:
                assert pop.name in out
        assert "policies (--policies): arcc, sccdcd, lotecc" in out
