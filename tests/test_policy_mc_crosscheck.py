"""Cross-check: the uncorrectable-pair screen vs exact MC footprints.

Fleet batches carry exact spatial coordinates (bank/row/column), so
:func:`repro.fleet.policies.uncorrectable_candidate_channels` decides
"shares a codeword" with the same footprint-intersection predicate the
MC engine uses (:func:`repro.reliability.montecarlo
.footprint_pairs_intersect`). These tests pin the exactness claim
against :mod:`repro.reliability.montecarlo` on identical fault
populations:

* **exact on every mix** — field-study type mixes, row/column-heavy
  mixes and device/lane-only mixes all agree channel for channel with
  the per-fault footprint walk, for every window/seed/rate swept here;
* **coordinate-less batches stay a true upper bound** — a batch whose
  bank/row/column default to zero (the pre-coordinate wire format)
  degrades to the historic rank-level screen: it still flags every
  exactly-uncorrectable channel, and carrying the coordinates is
  precisely what removes the over-count.
"""

import numpy as np
import pytest

from repro.faults.types import FaultRates
from repro.fleet.events import FAULT_TYPE_ORDER, FaultEventBatch
from repro.fleet.policies import uncorrectable_candidate_channels
from repro.reliability.analytical import ReliabilityParams
from repro.reliability.montecarlo import DEVICE_LEVEL_TYPES, _sample_batch
from repro.util.units import HOURS_PER_YEAR

YEARS = 7.0

_CODE_MAP = np.array(
    [FAULT_TYPE_ORDER.index(ft) for ft in DEVICE_LEVEL_TYPES]
)

#: Fault-rate mixes the exactness claim is swept over: the SC'12 field
#: mix, a small-footprint-heavy mix and a rank-covering-only mix.
RATE_MIXES = {
    "field": None,
    "row-column-heavy": FaultRates(
        bit=0.0, row=16.0, column=14.0, bank=1.0, device=0.2, lane=0.2
    ),
    "device-lane-only": FaultRates(
        bit=0.0, row=0.0, column=0.0, bank=0.0, device=1.4, lane=2.4
    ),
}


def _params(multiplier: float, mix: str) -> ReliabilityParams:
    rates = RATE_MIXES[mix]
    if rates is None:
        return ReliabilityParams(rate_multiplier=multiplier)
    return ReliabilityParams(rate_multiplier=multiplier, rates=rates)


def _sample(params, seed, channels):
    rng = np.random.Generator(np.random.PCG64(seed))
    return _sample_batch(params, rng, channels, YEARS)


def _as_fleet_batch(mc, with_coordinates: bool = True) -> FaultEventBatch:
    """The fleet view of an MC sample: same faults, same coordinates.

    The MC engine simulates one memory channel at a time, so every
    event's (geometric) channel coordinate is 0. With
    ``with_coordinates=False`` the bank/row/column arrays are dropped
    and default to zero — the pre-coordinate wire format the screen
    must still treat conservatively.
    """
    coords = {}
    if with_coordinates:
        coords = dict(
            bank=np.asarray(mc.bank, dtype=np.int64),
            row=np.asarray(mc.row, dtype=np.int64),
            column=np.asarray(mc.column, dtype=np.int64),
        )
    batch = FaultEventBatch(
        offsets=np.asarray(mc.offsets, dtype=np.int64),
        time_hours=np.asarray(mc.time_hours, dtype=np.float64),
        type_code=_CODE_MAP[np.asarray(mc.type_code, dtype=np.int64)],
        channel=np.zeros(len(mc.time_hours), dtype=np.int64),
        rank=np.asarray(mc.rank, dtype=np.int64),
        device=np.asarray(mc.device, dtype=np.int64),
        **coords,
    )
    batch.validate()
    return batch


def _exact_uncorrectable(mc, window_hours: float) -> np.ndarray:
    """Ground truth: any pair with intersecting exact footprints whose
    second member arrives within the window of the first."""
    out = np.zeros(len(mc.offsets) - 1, dtype=bool)
    for member in np.flatnonzero(mc.per_channel >= 2):
        faults = mc.channel_faults(int(member))
        for i, earlier in enumerate(faults):
            for later in faults[i + 1 :]:
                if (
                    later.time_hours - earlier.time_hours <= window_hours
                    and earlier.footprint_intersects(later)
                ):
                    out[member] = True
                    break
            if out[member]:
                break
    return out


class TestScreenIsExactEverywhere:
    @pytest.mark.parametrize("mix", sorted(RATE_MIXES))
    @pytest.mark.parametrize("seed", [0xC05C, 17])
    @pytest.mark.parametrize("multiplier", [8.0, 20.0])
    @pytest.mark.parametrize(
        "window_hours", [720.0, HOURS_PER_YEAR * YEARS]
    )
    def test_screen_agrees_channel_for_channel(
        self, mix, seed, multiplier, window_hours
    ):
        mc = _sample(_params(multiplier, mix), seed, channels=2048)
        screen = uncorrectable_candidate_channels(
            _as_fleet_batch(mc), window_hours
        )
        exact = _exact_uncorrectable(mc, window_hours)
        diverged = np.flatnonzero(screen != exact)
        assert diverged.size == 0, (
            f"{mix}: screen and exact footprints disagree on channels "
            f"{diverged[:5]}"
        )

    def test_exact_channels_are_nontrivial(self):
        """The sweep exercises real mass, not vacuous agreement."""
        mc = _sample(_params(20.0, "field"), 0xC05C, channels=4096)
        window_hours = HOURS_PER_YEAR * YEARS
        assert int(_exact_uncorrectable(mc, window_hours).sum()) >= 50


class TestCoordinateLessBatchesStayConservative:
    def test_zero_default_coordinates_are_a_true_upper_bound(self):
        """A pre-coordinate batch (bank/row/column all zero) degrades to
        the historic rank-level screen: every exactly-uncorrectable
        channel is still flagged, and the over-count the coordinates
        remove is visible in the comparison."""
        mc = _sample(_params(20.0, "field"), 0xC05C, channels=2048)
        window_hours = HOURS_PER_YEAR * YEARS
        blind = uncorrectable_candidate_channels(
            _as_fleet_batch(mc, with_coordinates=False), window_hours
        )
        exact = _exact_uncorrectable(mc, window_hours)
        missed = np.flatnonzero(exact & ~blind)
        assert missed.size == 0, (
            f"coordinate-less screen missed channels {missed[:5]}"
        )
        # The blind view over-counts; the coordinate-aware view does not.
        aware = uncorrectable_candidate_channels(
            _as_fleet_batch(mc), window_hours
        )
        assert int(blind.sum()) > int(exact.sum())
        assert np.array_equal(aware, exact)
