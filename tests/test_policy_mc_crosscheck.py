"""Cross-check: the rank-level uncorrectable-pair screen vs exact MC.

The fleet batches carry no bank/row/column coordinates, so
:func:`repro.fleet.policies.uncorrectable_candidate_channels` decides
"shares a codeword" at rank level — documented as a conservative upper
bound. These tests pin that claim against
:mod:`repro.reliability.montecarlo`, whose sampler assigns *exact*
footprint coordinates, on identical fault populations:

* **true upper bound** — every channel the exact footprint intersection
  flags, the screen flags too, for every window/seed/rate swept here;
* **tight within a documented factor** — at field-study type mixes the
  screen over-counts by ~2x (small row/column faults share a rank far
  more often than a bank/row/column), and never more than 3x — the
  factor quoted in ``docs/architecture.md``;
* **exact on its own terms** — restricted to device/lane faults (whose
  footprints cover every codeword of the rank/channel), the screen and
  the exact intersection agree channel for channel: the bound is
  achieved, so it cannot be loosened.
"""

import numpy as np
import pytest

from repro.faults.types import FaultRates
from repro.fleet.events import FAULT_TYPE_ORDER, FaultEventBatch
from repro.fleet.policies import uncorrectable_candidate_channels
from repro.reliability.analytical import ReliabilityParams
from repro.reliability.montecarlo import DEVICE_LEVEL_TYPES, _sample_batch
from repro.util.units import HOURS_PER_YEAR

#: The documented tightness bound of the rank-level screen vs the exact
#: footprint intersection at SC'12 type mixes (measured ~2x).
DOCUMENTED_TIGHTNESS_FACTOR = 3.0

YEARS = 7.0

_CODE_MAP = np.array(
    [FAULT_TYPE_ORDER.index(ft) for ft in DEVICE_LEVEL_TYPES]
)


def _sample(params, seed, channels):
    rng = np.random.Generator(np.random.PCG64(seed))
    return _sample_batch(params, rng, channels, YEARS)


def _as_fleet_batch(mc) -> FaultEventBatch:
    """The fleet view of an MC sample: same faults, rank-level fields.

    The MC engine simulates one memory channel at a time, so every
    event's (geometric) channel coordinate is 0; bank/row/column are
    simply dropped — exactly the information the screen must do without.
    """
    batch = FaultEventBatch(
        offsets=np.asarray(mc.offsets, dtype=np.int64),
        time_hours=np.asarray(mc.time_hours, dtype=np.float64),
        type_code=_CODE_MAP[np.asarray(mc.type_code, dtype=np.int64)],
        channel=np.zeros(len(mc.time_hours), dtype=np.int64),
        rank=np.asarray(mc.rank, dtype=np.int64),
        device=np.asarray(mc.device, dtype=np.int64),
    )
    batch.validate()
    return batch


def _exact_uncorrectable(mc, window_hours: float) -> np.ndarray:
    """Ground truth: any pair with intersecting exact footprints whose
    second member arrives within the window of the first."""
    out = np.zeros(len(mc.offsets) - 1, dtype=bool)
    for member in np.flatnonzero(mc.per_channel >= 2):
        faults = mc.channel_faults(int(member))
        for i, earlier in enumerate(faults):
            for later in faults[i + 1 :]:
                if (
                    later.time_hours - earlier.time_hours <= window_hours
                    and earlier.footprint_intersects(later)
                ):
                    out[member] = True
                    break
            if out[member]:
                break
    return out


class TestScreenIsTrueUpperBound:
    @pytest.mark.parametrize("seed", [0xC05C, 17])
    @pytest.mark.parametrize("multiplier", [8.0, 20.0])
    @pytest.mark.parametrize(
        "window_hours", [720.0, HOURS_PER_YEAR * YEARS]
    )
    def test_screen_flags_every_exact_channel(
        self, seed, multiplier, window_hours
    ):
        params = ReliabilityParams(rate_multiplier=multiplier)
        mc = _sample(params, seed, channels=2048)
        screen = uncorrectable_candidate_channels(
            _as_fleet_batch(mc), window_hours
        )
        exact = _exact_uncorrectable(mc, window_hours)
        missed = np.flatnonzero(exact & ~screen)
        assert missed.size == 0, (
            f"screen missed exact-uncorrectable channels {missed[:5]}"
        )

    def test_tight_within_documented_factor(self):
        """At field type mixes the over-count stays under 3x (meas. ~2x)."""
        params = ReliabilityParams(rate_multiplier=20.0)
        mc = _sample(params, 0xC05C, channels=4096)
        fleet = _as_fleet_batch(mc)
        for window_hours in (1000.0, HOURS_PER_YEAR * YEARS):
            screen_count = int(
                uncorrectable_candidate_channels(fleet, window_hours).sum()
            )
            exact_count = int(_exact_uncorrectable(mc, window_hours).sum())
            # Enough mass for the ratio to mean something.
            assert exact_count >= 50
            assert screen_count >= exact_count
            assert screen_count <= DOCUMENTED_TIGHTNESS_FACTOR * exact_count


class TestScreenExactOnRankCoveringFaults:
    def test_device_and_lane_only_populations_agree_exactly(self):
        """Device/lane footprints cover the whole rank (or channel), so
        rank-level reasoning *is* exact — the screen's bound is achieved
        channel for channel, not merely approached."""
        params = ReliabilityParams(
            rate_multiplier=400.0,
            rates=FaultRates(
                bit=0.0, row=0.0, column=0.0, bank=0.0, device=1.4, lane=2.4
            ),
        )
        mc = _sample(params, 7, channels=2048)
        window_hours = HOURS_PER_YEAR * YEARS
        screen = uncorrectable_candidate_channels(
            _as_fleet_batch(mc), window_hours
        )
        exact = _exact_uncorrectable(mc, window_hours)
        assert int(exact.sum()) >= 50
        assert np.array_equal(screen, exact)
