"""Hypothesis property tests on the system's core invariants.

These cut across modules: the codeword/storage/scrubber pipeline must
uphold the paper's guarantees for *any* data and *any* single-device
failure, not just the examples the unit tests pick.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.modes import ProtectionMode
from repro.core.storage import codec_for_mode, symbol_home
from repro.ecc.base import DecodeStatus
from repro.ecc.checksum import verify_checksum
from repro.ecc.chipkill import make_relaxed_codec, make_upgraded_codec
from repro.ecc.lotecc import LotEcc9
from repro.ecc.secded import Secded7264
from repro.ecc.sparing import DoubleChipSparing
from repro.ecc.vecc import Vecc

MODES = list(ProtectionMode)


class TestCodewordInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        st.sampled_from(MODES),
        st.data(),
    )
    def test_any_line_roundtrips_in_any_mode(self, mode, data):
        codec = codec_for_mode(mode)
        payload = data.draw(
            st.binary(min_size=mode.line_bytes, max_size=mode.line_bytes)
        )
        result = codec.decode_line(codec.encode_line(payload))
        assert result.status == DecodeStatus.NO_ERROR
        assert result.data == payload

    @settings(max_examples=20, deadline=None)
    @given(
        st.sampled_from(MODES),
        st.data(),
    )
    def test_any_single_device_failure_corrected(self, mode, data):
        """The chipkill guarantee holds in every protection mode."""
        codec = codec_for_mode(mode)
        payload = data.draw(
            st.binary(min_size=mode.line_bytes, max_size=mode.line_bytes)
        )
        device = data.draw(st.integers(0, codec.devices - 1))
        pattern = data.draw(st.integers(1, 255))
        corrupted = codec.corrupt_device(
            codec.encode_line(payload), device, pattern
        )
        result = codec.decode_line(corrupted)
        assert result.status == DecodeStatus.CORRECTED
        assert result.data == payload

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_upgraded_detects_any_two_device_failure(self, data):
        """Double detection — the property ARCC pays 36 devices for."""
        codec = make_upgraded_codec()
        payload = data.draw(st.binary(min_size=128, max_size=128))
        d1 = data.draw(st.integers(0, 35))
        d2 = data.draw(st.integers(0, 35).filter(lambda d: d != d1))
        p1 = data.draw(st.integers(1, 255))
        p2 = data.draw(st.integers(1, 255))
        corrupted = codec.corrupt_device(
            codec.corrupt_device(codec.encode_line(payload), d1, p1), d2, p2
        )
        result = codec.decode_line(corrupted)
        assert result.status == DecodeStatus.DETECTED_UE

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_relaxed_never_returns_wrong_data_for_single_fault(self, data):
        """Single-fault safety: relaxed mode either corrects exactly or
        the oracle comparison would flag it — never a silent wrong
        answer for one device."""
        codec = make_relaxed_codec()
        payload = data.draw(st.binary(min_size=64, max_size=64))
        device = data.draw(st.integers(0, 17))
        pattern = data.draw(st.integers(1, 255))
        corrupted = codec.corrupt_device(
            codec.encode_line(payload), device, pattern
        )
        result = codec.decode_line(corrupted)
        assert result.ok and result.data == payload


class TestSymbolHomeInvariants:
    @given(st.sampled_from(MODES))
    def test_placement_is_bijective(self, mode):
        """Every codeword symbol gets a unique (sub-line, device) slot —
        no two symbols of a codeword share a device (the chipkill layout
        rule of Figure 2.1)."""
        homes = [
            symbol_home(mode, s)
            for s in range(mode.geometry.total_symbols)
        ]
        assert len(set(homes)) == len(homes)

    @given(st.sampled_from(MODES))
    def test_constant_storage_per_subline(self, mode):
        """Each sub-line stores 18 symbols per codeword in every mode —
        the constant-overhead invariant of Section 4.1."""
        from collections import Counter

        counts = Counter(
            symbol_home(mode, s)[0]
            for s in range(mode.geometry.total_symbols)
        )
        assert all(count == 18 for count in counts.values())
        assert len(counts) == mode.span


class TestOtherCodecs:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, (1 << 64) - 1), st.integers(0, 71),
           st.integers(0, 71))
    def test_secded_never_miscorrects_double(self, word, b1, b2):
        codec = Secded7264()
        cw = codec.encode(word)
        if b1 == b2:
            return
        result = codec.decode(cw ^ (1 << b1) ^ (1 << b2))
        assert result.status == DecodeStatus.DETECTED_UE

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=64, max_size=64), st.integers(0, 7))
    def test_lotecc_corrects_any_full_device_flip(self, payload, device):
        """Tier 1 localizes a full-device flip unless the checksum aliases.

        One's-complement arithmetic has two zero representations, so a
        slice whose sum is ±0 keeps a matching checksum under a full
        bit-flip — LOT-ECC's documented detection gap (the corruption
        surfaces as SDC in oracle-checked simulations). Every other flip
        must be localized and rebuilt exactly.
        """
        codec = LotEcc9()
        line = codec.encode_line(payload)
        bad = line.copy()
        flipped = bytes(b ^ 0xFF for b in bad.segments[device])
        bad.segments[device] = flipped
        result = codec.decode_line(bad)
        if verify_checksum(flipped, line.checksums[device]):
            assert result.status == DecodeStatus.NO_ERROR
            assert result.data != payload  # honest aliasing: silent SDC
        else:
            assert result.status == DecodeStatus.CORRECTED
            assert result.data == payload

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=64, max_size=64), st.integers(0, 17),
           st.integers(1, 255))
    def test_vecc_slow_path_always_corrects_one_device(
        self, payload, device, pattern
    ):
        vecc = Vecc()
        rank, corr = vecc.encode_line(payload)
        bad = [list(cw) for cw in rank]
        for cw in bad:
            cw[device] ^= pattern
        result, _ = vecc.decode_line(bad, corr)
        assert result.ok and result.data == payload

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=64, max_size=64), st.integers(0, 34),
           st.integers(1, 255))
    def test_sparing_corrects_any_single_device(
        self, payload, device, pattern
    ):
        sparing = DoubleChipSparing()
        cws = sparing.encode_line(payload)
        bad = [list(cw) for cw in cws]
        for cw in bad:
            cw[device] ^= pattern
        result = sparing.decode_line(bad)
        assert result.status == DecodeStatus.CORRECTED
        assert result.data == payload
