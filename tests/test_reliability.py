"""Tests for the Chapter 6 reliability models (analytical + Monte Carlo)."""

import pytest

from repro.faults.types import FaultType
from repro.reliability.analytical import (
    ReliabilityParams,
    expected_sdc_arcc,
    expected_sdc_sccdcd,
    overlap_probability,
    sdc_events_per_1000_machine_years,
    sdc_rate_arcc_ded,
)
from repro.reliability.due import (
    due_rate_sccdcd,
    due_rate_sparing,
    due_reduction_factor,
)
from repro.reliability.montecarlo import (
    MonteCarloReliability,
    _PlacedFault,
)


class TestOverlapProbability:
    def setup_method(self):
        self.params = ReliabilityParams()

    def test_device_overlaps_everything(self):
        for other in FaultType:
            if other == FaultType.BIT:
                continue
            assert overlap_probability(
                FaultType.DEVICE, other, self.params
            ) == 1.0

    def test_lane_overlaps_everything(self):
        assert overlap_probability(
            FaultType.LANE, FaultType.ROW, self.params
        ) == 1.0

    def test_row_row(self):
        assert overlap_probability(
            FaultType.ROW, FaultType.ROW, self.params
        ) == pytest.approx(1.0 / (8 * 16384))

    def test_column_column(self):
        assert overlap_probability(
            FaultType.COLUMN, FaultType.COLUMN, self.params
        ) == pytest.approx(1.0 / (8 * 2048))

    def test_row_column_cross_in_same_bank(self):
        assert overlap_probability(
            FaultType.ROW, FaultType.COLUMN, self.params
        ) == pytest.approx(1.0 / 8)

    def test_symmetric(self):
        for a in FaultType:
            for b in FaultType:
                if FaultType.BIT in (a, b):
                    continue
                assert overlap_probability(
                    a, b, self.params
                ) == overlap_probability(b, a, self.params)


class TestAnalyticalSdc:
    def test_arcc_rate_positive(self):
        assert sdc_rate_arcc_ded(ReliabilityParams()) > 0

    def test_arcc_scales_quadratically_with_rate(self):
        """Two faults must race one scrub: rate goes as multiplier^2."""
        base = sdc_rate_arcc_ded(ReliabilityParams(rate_multiplier=1.0))
        quad = sdc_rate_arcc_ded(ReliabilityParams(rate_multiplier=2.0))
        assert quad == pytest.approx(4 * base, rel=1e-6)

    def test_sccdcd_scales_cubically(self):
        base = expected_sdc_sccdcd(
            ReliabilityParams(rate_multiplier=1.0), 7.0
        )
        cubed = expected_sdc_sccdcd(
            ReliabilityParams(rate_multiplier=2.0), 7.0
        )
        assert cubed == pytest.approx(8 * base, rel=1e-6)

    def test_arcc_linear_in_scrub_interval(self):
        short = sdc_rate_arcc_ded(
            ReliabilityParams(scrub_interval_hours=1.0)
        )
        long = sdc_rate_arcc_ded(
            ReliabilityParams(scrub_interval_hours=8.0)
        )
        assert long == pytest.approx(8 * short, rel=1e-6)

    def test_sccdcd_below_arcc(self):
        """The trade: ARCC admits more SDCs than always-on DED."""
        params = ReliabilityParams(rate_multiplier=4.0)
        sccdcd, arcc = sdc_events_per_1000_machine_years(7.0, params)
        assert sccdcd < arcc

    def test_both_insignificant(self):
        """...but both are far below one event per 1000 machine-years,
        which is the paper's point."""
        params = ReliabilityParams(rate_multiplier=4.0)
        sccdcd, arcc = sdc_events_per_1000_machine_years(7.0, params)
        assert arcc < 0.01
        assert sccdcd < 0.001

    def test_expected_arcc_linear_in_lifespan(self):
        params = ReliabilityParams()
        assert expected_sdc_arcc(params, 6.0) == pytest.approx(
            2 * expected_sdc_arcc(params, 3.0)
        )

    def test_invalid_lifespan_rejected(self):
        with pytest.raises(ValueError):
            sdc_events_per_1000_machine_years(0.0, ReliabilityParams())


class TestDueRates:
    def test_sparing_far_below_sccdcd(self):
        params = ReliabilityParams()
        assert due_rate_sparing(params) < due_rate_sccdcd(params)

    def test_reduction_exceeds_cited_17x(self):
        """Section 5.2 cites a 17x DUE reduction; the scrub-vs-repair
        window ratio gives at least that."""
        assert due_reduction_factor(ReliabilityParams()) >= 17.0

    def test_reduction_tracks_repair_window(self):
        params = ReliabilityParams()
        week = due_reduction_factor(params, repair_hours=168.0)
        month = due_reduction_factor(params, repair_hours=720.0)
        assert month == pytest.approx(week * 720.0 / 168.0, rel=1e-6)


class TestFootprintIntersection:
    def _fault(self, fault_type, rank=0, device=0, bank=0, row=0, column=0):
        return _PlacedFault(
            time_hours=0.0,
            fault_type=fault_type,
            rank=rank,
            device=device,
            bank=bank,
            row=row,
            column=column,
        )

    def test_same_device_never_intersects(self):
        a = self._fault(FaultType.DEVICE, device=3)
        b = self._fault(FaultType.ROW, device=3)
        assert not a.footprint_intersects(b)

    def test_different_rank_no_intersection(self):
        a = self._fault(FaultType.DEVICE, rank=0)
        b = self._fault(FaultType.DEVICE, rank=1, device=1)
        assert not a.footprint_intersects(b)

    def test_lane_crosses_ranks(self):
        a = self._fault(FaultType.LANE, rank=0)
        b = self._fault(FaultType.DEVICE, rank=1, device=5)
        assert a.footprint_intersects(b)

    def test_rows_need_same_bank_and_row(self):
        a = self._fault(FaultType.ROW, device=0, bank=2, row=7)
        same = self._fault(FaultType.ROW, device=1, bank=2, row=7)
        other_row = self._fault(FaultType.ROW, device=1, bank=2, row=8)
        other_bank = self._fault(FaultType.ROW, device=1, bank=3, row=7)
        assert a.footprint_intersects(same)
        assert not a.footprint_intersects(other_row)
        assert not a.footprint_intersects(other_bank)

    def test_row_column_cross(self):
        a = self._fault(FaultType.ROW, device=0, bank=1, row=5)
        b = self._fault(FaultType.COLUMN, device=1, bank=1, column=99)
        assert a.footprint_intersects(b)


class TestMonteCarlo:
    def test_no_failures_at_tiny_rates(self):
        mc = MonteCarloReliability(
            ReliabilityParams(rate_multiplier=0.01), seed=1
        )
        outcome = mc.run(channels=50, years=1.0)
        assert outcome.sdc_machines_arcc == 0
        assert outcome.sdc_machines_sccdcd == 0

    def test_elevated_rates_produce_due_and_order(self):
        """At strongly elevated rates the ordering must hold: sparing DUEs
        <= SCCDCD DUEs, and ARCC SDCs >= SCCDCD SDCs."""
        mc = MonteCarloReliability(
            ReliabilityParams(rate_multiplier=400.0), seed=2
        )
        outcome = mc.run(channels=150, years=7.0)
        assert outcome.due_machines_sccdcd >= outcome.due_machines_sparing
        assert outcome.sdc_machines_arcc >= outcome.sdc_machines_sccdcd
        assert outcome.due_machines_sccdcd > 0  # rates high enough to see

    def test_per_1000_machine_years_scaling(self):
        mc = MonteCarloReliability(seed=3)
        outcome = mc.run(channels=10, years=5.0)
        assert outcome.per_1000_machine_years(5) == pytest.approx(
            5 * 1000.0 / 50.0
        )

    def test_empty_population_rejected(self):
        mc = MonteCarloReliability(seed=4)
        outcome = mc.run(channels=0, years=1.0)
        with pytest.raises(ValueError):
            outcome.per_1000_machine_years(0)

    def test_deterministic(self):
        params = ReliabilityParams(rate_multiplier=200.0)
        a = MonteCarloReliability(params, seed=5).run(50, 3.0)
        b = MonteCarloReliability(params, seed=5).run(50, 3.0)
        assert a.sdc_machines_arcc == b.sdc_machines_arcc
        assert a.due_machines_sccdcd == b.due_machines_sccdcd
