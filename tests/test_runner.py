"""Tests for the parallel experiment runner (jobs, cache, executor)."""

import pytest

from repro.config import ARCC_MEMORY_CONFIG
from repro.faults.types import FaultType
from repro.runner import (
    ExperimentPlan,
    Job,
    ResultCache,
    describe_value,
    execute_plan,
    execute_plans,
    run_jobs,
)


def _square(x, seed=0):
    return x * x + seed


def _record(x, seed=0, path=None):
    """Worker with an observable side effect (for cache-hit counting)."""
    if path is not None:
        with open(path, "a") as handle:
            handle.write(f"{x}\n")
    return x + seed


def _boom(x, seed=0):
    raise RuntimeError("boom")


def _seed_from_kwargs(**kwargs):
    """Callable that only takes **kwargs (no named ``seed`` parameter)."""
    return kwargs.get("seed")


class TestJob:
    def test_create_sorts_config(self):
        a = Job.create("j", _square, x=1)
        b = Job("j", _square, (("x", 1),))
        assert a == b

    def test_kwargs_include_seed(self):
        job = Job.create("j", _square, seed=7, x=2)
        assert job.kwargs == {"x": 2, "seed": 7}

    def test_kwargs_omit_missing_seed(self):
        job = Job.create("j", _square, x=2)
        assert job.kwargs == {"x": 2}

    def test_execute(self):
        assert Job.create("j", _square, seed=1, x=3).execute() == 10

    def test_describe_is_stable(self):
        a = Job.create("j", _square, x=1, y=2.5).describe()
        b = Job.create("j", _square, y=2.5, x=1).describe()
        assert a == b
        assert a["fn"].endswith("_square")


class TestDescribeValue:
    def test_enum(self):
        assert describe_value(FaultType.LANE) == "FaultType.LANE"

    def test_dataclass(self):
        desc = describe_value(ARCC_MEMORY_CONFIG)
        assert desc["__dataclass__"] == "MemoryConfig"
        assert desc["devices_per_rank"] == 18

    def test_nested_containers(self):
        desc = describe_value({"k": (1, FaultType.ROW)})
        assert desc == {"k": [1, "FaultType.ROW"]}

    def test_callable(self):
        assert "test_runner" in describe_value(_square)


class TestRunJobs:
    def test_results_in_job_order(self):
        jobs = [Job.create(f"j{i}", _square, x=i) for i in range(6)]
        results = run_jobs(jobs, max_workers=1)
        assert [r.value for r in results] == [i * i for i in range(6)]
        assert [r.name for r in results] == [f"j{i}" for i in range(6)]

    def test_pool_matches_inline(self):
        jobs = [Job.create(f"j{i}", _square, seed=i, x=i) for i in range(8)]
        inline = [r.value for r in run_jobs(jobs, max_workers=1)]
        pooled = [r.value for r in run_jobs(jobs, max_workers=4)]
        assert inline == pooled

    def test_base_seed_fills_missing_seeds_deterministically(self):
        jobs = [Job.create(f"j{i}", _square, x=0) for i in range(4)]
        a = [r.value for r in run_jobs(jobs, base_seed=42)]
        b = [r.value for r in run_jobs(jobs, base_seed=42)]
        c = [r.value for r in run_jobs(jobs, base_seed=43)]
        assert a == b
        assert a != c

    def test_explicit_seed_wins_over_base_seed(self):
        jobs = [Job.create("j", _square, seed=5, x=0)]
        (result,) = run_jobs(jobs, base_seed=42)
        assert result.value == 5

    def test_base_seed_reaches_kwargs_only_callables(self):
        """``**kwargs`` counts as accepting ``seed`` — wrapper callables
        (e.g. partial-style shims) must still get deterministic seeds."""
        (result,) = run_jobs(
            [Job.create("j", _seed_from_kwargs)], base_seed=9
        )
        assert result.value is not None
        (again,) = run_jobs(
            [Job.create("j", _seed_from_kwargs)], base_seed=9
        )
        assert again.value == result.value

    def test_base_seed_skips_seedless_callables(self):
        """Jobs whose fn takes no ``seed`` kwarg must not be crashed by
        base_seed injection (e.g. Monte-Carlo block jobs carry their
        seed as ordinary config)."""
        from repro.reliability.montecarlo import MonteCarloReliability

        jobs = MonteCarloReliability(seed=1).block_jobs(10, 1.0)
        results = run_jobs(jobs, base_seed=5)
        assert results[0].value.channels == 10


class TestResultCache:
    def test_second_run_hits_cache(self, tmp_path):
        log = tmp_path / "calls.log"
        cache = ResultCache(tmp_path / "cache")
        jobs = [Job.create("j", _record, x=3, path=str(log))]
        first = run_jobs(jobs, cache=cache)
        second = run_jobs(jobs, cache=cache)
        assert first[0].value == second[0].value == 3
        assert not first[0].cached and second[0].cached
        assert log.read_text().count("3") == 1  # executed exactly once

    def test_different_config_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_jobs([Job.create("j", _square, x=2)], cache=cache)
        (result,) = run_jobs([Job.create("j", _square, x=3)], cache=cache)
        assert not result.cached
        assert result.value == 9

    def test_code_version_invalidates(self, tmp_path):
        old = ResultCache(tmp_path / "cache", version="v1")
        new = ResultCache(tmp_path / "cache", version="v2")
        job = Job.create("j", _square, x=4)
        run_jobs([job], cache=old)
        hit_old, _ = old.get(job)
        hit_new, _ = new.get(job)
        assert hit_old and not hit_new

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_jobs([Job.create("j", _square, x=1)], cache=cache)
        assert cache.clear() == 1
        assert cache.get(Job.create("j", _square, x=1)) == (False, None)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = Job.create("j", _square, x=1)
        run_jobs([job], cache=cache)
        for path in (tmp_path / "cache").glob("*.pkl"):
            path.write_bytes(b"not a pickle")
        hit, _ = cache.get(job)
        assert not hit

    def test_truncated_entry_is_a_miss(self, tmp_path):
        """A torn write (e.g. the process was killed mid-copy of the
        cache directory) must read as a miss and then heal on rerun."""
        cache = ResultCache(tmp_path / "cache")
        job = Job.create("j", _square, x=5)
        run_jobs([job], cache=cache)
        for path in (tmp_path / "cache").glob("*.pkl"):
            path.write_bytes(path.read_bytes()[:3])
        hit, _ = cache.get(job)
        assert not hit
        (result,) = run_jobs([job], cache=cache)
        assert not result.cached and result.value == 25
        hit, value = cache.get(job)
        assert hit and value == 25

    def test_clear_tolerates_concurrent_removal(self, tmp_path, monkeypatch):
        """An entry unlinked by another process between the directory
        listing and the unlink must not crash ``clear()``."""
        from pathlib import Path

        cache = ResultCache(tmp_path / "cache")
        for x in range(3):
            run_jobs([Job.create("j", _square, x=x)], cache=cache)
        real_glob = Path.glob

        def racing_glob(self, pattern):
            paths = list(real_glob(self, pattern))
            paths[0].unlink()  # a concurrent clear got there first
            return iter(paths)

        monkeypatch.setattr(Path, "glob", racing_glob)
        assert cache.clear() == 3
        monkeypatch.undo()
        assert cache.get(Job.create("j", _square, x=0)) == (False, None)


class TestCrashSafety:
    """Every finished job persists immediately — a failing job (or a
    killed process) must not discard the batch's completed work."""

    def test_results_persist_before_batch_failure(self, tmp_path):
        log = tmp_path / "calls.log"
        cache = ResultCache(tmp_path / "cache")
        good = [
            Job.create(f"g{i}", _record, x=i, path=str(log))
            for i in range(3)
        ]
        bad = Job.create("bad", _boom, x=0)
        with pytest.raises(RuntimeError, match="boom"):
            run_jobs(good + [bad], max_workers=1, cache=cache)
        assert len(log.read_text().splitlines()) == 3  # all ran...
        rerun = run_jobs(good, cache=cache)
        assert all(result.cached for result in rerun)  # ...and survived
        assert len(log.read_text().splitlines()) == 3  # none re-ran

    def test_failed_job_runs_again(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        bad = Job.create("bad", _boom, x=0)
        with pytest.raises(RuntimeError):
            run_jobs([bad], cache=cache)
        # Failures are never cached: the retry really retries.
        with pytest.raises(RuntimeError):
            run_jobs([bad], cache=cache)


class TestSourceTreeDigest:
    """code_version() must see compiled-kernel sources, not just .py."""

    def _tree(self, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        kernel = tmp_path / "_kernel"
        kernel.mkdir()
        (kernel / "kernel.c").write_text("int replay(void) { return 1; }\n")
        (kernel / "kernel.h").write_text("int replay(void);\n")
        return kernel

    def test_patterns_cover_compiled_sources(self):
        from repro.runner.cache import SOURCE_PATTERNS

        assert "*.c" in SOURCE_PATTERNS
        assert "*.h" in SOURCE_PATTERNS

    def test_kernel_c_edit_changes_digest(self, tmp_path):
        from repro.runner.cache import source_tree_digest

        kernel = self._tree(tmp_path)
        before = source_tree_digest(tmp_path)
        (kernel / "kernel.c").write_text("int replay(void) { return 2; }\n")
        assert source_tree_digest(tmp_path) != before

    def test_header_edit_changes_digest(self, tmp_path):
        from repro.runner.cache import source_tree_digest

        kernel = self._tree(tmp_path)
        before = source_tree_digest(tmp_path)
        (kernel / "kernel.h").write_text("int replay(int n);\n")
        assert source_tree_digest(tmp_path) != before

    def test_non_source_files_ignored(self, tmp_path):
        from repro.runner.cache import source_tree_digest

        self._tree(tmp_path)
        before = source_tree_digest(tmp_path)
        (tmp_path / "README.md").write_text("docs\n")
        (tmp_path / "mod.pyc").write_bytes(b"\x00bytecode")
        assert source_tree_digest(tmp_path) == before

    def test_deterministic_across_calls(self, tmp_path):
        from repro.runner.cache import source_tree_digest

        self._tree(tmp_path)
        assert source_tree_digest(tmp_path) == source_tree_digest(tmp_path)

    def test_package_digest_includes_kernel_source(self):
        """The live package's kernel.c actually participates."""
        from pathlib import Path

        import repro
        from repro.runner.cache import SOURCE_PATTERNS

        package_root = Path(repro.__file__).resolve().parent
        c_sources = [
            p
            for pattern in SOURCE_PATTERNS
            for p in package_root.rglob(pattern)
            if p.suffix in (".c", ".h")
        ]
        assert c_sources, "expected compiled kernel sources in the package"


class TestPlans:
    def test_execute_plan_assembles(self):
        plan = ExperimentPlan(
            name="p",
            jobs=[Job.create(f"j{i}", _square, x=i) for i in range(3)],
            assemble=sum,
        )
        assert execute_plan(plan) == 0 + 1 + 4

    def test_execute_plans_splits_results(self):
        plans = [
            ExperimentPlan(
                name=f"p{n}",
                jobs=[
                    Job.create(f"p{n}j{i}", _square, x=10 * n + i)
                    for i in range(n + 1)
                ],
                assemble=list,
            )
            for n in range(3)
        ]
        results = execute_plans(plans, max_workers=1)
        assert results[0] == [0]
        assert results[1] == [100, 121]
        assert results[2] == [400, 441, 484]

    def test_empty_plan(self):
        plan = ExperimentPlan(name="tables", jobs=[], assemble=lambda v: "ok")
        assert execute_plan(plan) == "ok"


class TestRegistry:
    def test_known_figures(self):
        from repro.runner.registry import FIGURES, build_plans

        plans = build_plans()
        assert [p.name for p in plans] == list(FIGURES)

    def test_quick_scales_down(self):
        from repro.runner.registry import FIGURES

        full = FIGURES["fig7.1"].plan()
        quick = FIGURES["fig7.1"].plan(quick=True)
        assert len(quick.jobs) < len(full.jobs)

    def test_unknown_figure_rejected(self):
        from repro.runner.registry import build_plans

        with pytest.raises(KeyError):
            build_plans(["fig9.9"])


class TestJobDeduplication:
    """Identical computations run once per batch, whatever their names."""

    def test_duplicate_jobs_share_one_execution(self, tmp_path):
        marker = str(tmp_path / "calls")
        jobs = [
            Job.create("a[3]", _record, x=3, path=marker),
            Job.create("b[3]", _record, x=3, path=marker),  # same computation
            Job.create("c[4]", _record, x=4, path=marker),
        ]
        results = run_jobs(jobs)
        assert [r.value for r in results] == [3, 3, 4]
        assert [r.name for r in results] == ["a[3]", "b[3]", "c[4]"]
        # Only two executions happened; the duplicate reports cached.
        with open(marker) as handle:
            assert len(handle.readlines()) == 2
        assert results[1].cached and not results[0].cached

    def test_dedup_respects_differing_seeds(self, tmp_path):
        marker = str(tmp_path / "calls")
        jobs = [
            Job.create("a", _record, seed=1, x=3, path=marker),
            Job.create("b", _record, seed=2, x=3, path=marker),
        ]
        run_jobs(jobs)
        with open(marker) as handle:
            assert len(handle.readlines()) == 2

    def test_pool_dedup_matches_inline(self):
        jobs = [
            Job.create(f"dup{i}", _square, x=7) for i in range(6)
        ] + [Job.create("other", _square, x=2)]
        inline = [r.value for r in run_jobs(jobs, max_workers=1)]
        pooled = [r.value for r in run_jobs(jobs, max_workers=4)]
        assert inline == pooled == [49] * 6 + [4]
