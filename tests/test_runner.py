"""Tests for the parallel experiment runner (jobs, cache, executor)."""

import pytest

from repro.config import ARCC_MEMORY_CONFIG
from repro.faults.types import FaultType
from repro.runner import (
    ExperimentPlan,
    Job,
    ResultCache,
    describe_value,
    execute_plan,
    execute_plans,
    run_jobs,
)


def _square(x, seed=0):
    return x * x + seed


def _record(x, seed=0, path=None):
    """Worker with an observable side effect (for cache-hit counting)."""
    if path is not None:
        with open(path, "a") as handle:
            handle.write(f"{x}\n")
    return x + seed


class TestJob:
    def test_create_sorts_config(self):
        a = Job.create("j", _square, x=1)
        b = Job("j", _square, (("x", 1),))
        assert a == b

    def test_kwargs_include_seed(self):
        job = Job.create("j", _square, seed=7, x=2)
        assert job.kwargs == {"x": 2, "seed": 7}

    def test_kwargs_omit_missing_seed(self):
        job = Job.create("j", _square, x=2)
        assert job.kwargs == {"x": 2}

    def test_execute(self):
        assert Job.create("j", _square, seed=1, x=3).execute() == 10

    def test_describe_is_stable(self):
        a = Job.create("j", _square, x=1, y=2.5).describe()
        b = Job.create("j", _square, y=2.5, x=1).describe()
        assert a == b
        assert a["fn"].endswith("_square")


class TestDescribeValue:
    def test_enum(self):
        assert describe_value(FaultType.LANE) == "FaultType.LANE"

    def test_dataclass(self):
        desc = describe_value(ARCC_MEMORY_CONFIG)
        assert desc["__dataclass__"] == "MemoryConfig"
        assert desc["devices_per_rank"] == 18

    def test_nested_containers(self):
        desc = describe_value({"k": (1, FaultType.ROW)})
        assert desc == {"k": [1, "FaultType.ROW"]}

    def test_callable(self):
        assert "test_runner" in describe_value(_square)


class TestRunJobs:
    def test_results_in_job_order(self):
        jobs = [Job.create(f"j{i}", _square, x=i) for i in range(6)]
        results = run_jobs(jobs, max_workers=1)
        assert [r.value for r in results] == [i * i for i in range(6)]
        assert [r.name for r in results] == [f"j{i}" for i in range(6)]

    def test_pool_matches_inline(self):
        jobs = [Job.create(f"j{i}", _square, seed=i, x=i) for i in range(8)]
        inline = [r.value for r in run_jobs(jobs, max_workers=1)]
        pooled = [r.value for r in run_jobs(jobs, max_workers=4)]
        assert inline == pooled

    def test_base_seed_fills_missing_seeds_deterministically(self):
        jobs = [Job.create(f"j{i}", _square, x=0) for i in range(4)]
        a = [r.value for r in run_jobs(jobs, base_seed=42)]
        b = [r.value for r in run_jobs(jobs, base_seed=42)]
        c = [r.value for r in run_jobs(jobs, base_seed=43)]
        assert a == b
        assert a != c

    def test_explicit_seed_wins_over_base_seed(self):
        jobs = [Job.create("j", _square, seed=5, x=0)]
        (result,) = run_jobs(jobs, base_seed=42)
        assert result.value == 5

    def test_base_seed_skips_seedless_callables(self):
        """Jobs whose fn takes no ``seed`` kwarg must not be crashed by
        base_seed injection (e.g. Monte-Carlo block jobs carry their
        seed as ordinary config)."""
        from repro.reliability.montecarlo import MonteCarloReliability

        jobs = MonteCarloReliability(seed=1).block_jobs(10, 1.0)
        results = run_jobs(jobs, base_seed=5)
        assert results[0].value.channels == 10


class TestResultCache:
    def test_second_run_hits_cache(self, tmp_path):
        log = tmp_path / "calls.log"
        cache = ResultCache(tmp_path / "cache")
        jobs = [Job.create("j", _record, x=3, path=str(log))]
        first = run_jobs(jobs, cache=cache)
        second = run_jobs(jobs, cache=cache)
        assert first[0].value == second[0].value == 3
        assert not first[0].cached and second[0].cached
        assert log.read_text().count("3") == 1  # executed exactly once

    def test_different_config_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_jobs([Job.create("j", _square, x=2)], cache=cache)
        (result,) = run_jobs([Job.create("j", _square, x=3)], cache=cache)
        assert not result.cached
        assert result.value == 9

    def test_code_version_invalidates(self, tmp_path):
        old = ResultCache(tmp_path / "cache", version="v1")
        new = ResultCache(tmp_path / "cache", version="v2")
        job = Job.create("j", _square, x=4)
        run_jobs([job], cache=old)
        hit_old, _ = old.get(job)
        hit_new, _ = new.get(job)
        assert hit_old and not hit_new

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_jobs([Job.create("j", _square, x=1)], cache=cache)
        assert cache.clear() == 1
        assert cache.get(Job.create("j", _square, x=1)) == (False, None)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = Job.create("j", _square, x=1)
        run_jobs([job], cache=cache)
        for path in (tmp_path / "cache").glob("*.pkl"):
            path.write_bytes(b"not a pickle")
        hit, _ = cache.get(job)
        assert not hit


class TestPlans:
    def test_execute_plan_assembles(self):
        plan = ExperimentPlan(
            name="p",
            jobs=[Job.create(f"j{i}", _square, x=i) for i in range(3)],
            assemble=sum,
        )
        assert execute_plan(plan) == 0 + 1 + 4

    def test_execute_plans_splits_results(self):
        plans = [
            ExperimentPlan(
                name=f"p{n}",
                jobs=[
                    Job.create(f"p{n}j{i}", _square, x=10 * n + i)
                    for i in range(n + 1)
                ],
                assemble=list,
            )
            for n in range(3)
        ]
        results = execute_plans(plans, max_workers=1)
        assert results[0] == [0]
        assert results[1] == [100, 121]
        assert results[2] == [400, 441, 484]

    def test_empty_plan(self):
        plan = ExperimentPlan(name="tables", jobs=[], assemble=lambda v: "ok")
        assert execute_plan(plan) == "ok"


class TestRegistry:
    def test_known_figures(self):
        from repro.runner.registry import FIGURES, build_plans

        plans = build_plans()
        assert [p.name for p in plans] == list(FIGURES)

    def test_quick_scales_down(self):
        from repro.runner.registry import FIGURES

        full = FIGURES["fig7.1"].plan()
        quick = FIGURES["fig7.1"].plan(quick=True)
        assert len(quick.jobs) < len(full.jobs)

    def test_unknown_figure_rejected(self):
        from repro.runner.registry import build_plans

        with pytest.raises(KeyError):
            build_plans(["fig9.9"])


class TestJobDeduplication:
    """Identical computations run once per batch, whatever their names."""

    def test_duplicate_jobs_share_one_execution(self, tmp_path):
        marker = str(tmp_path / "calls")
        jobs = [
            Job.create("a[3]", _record, x=3, path=marker),
            Job.create("b[3]", _record, x=3, path=marker),  # same computation
            Job.create("c[4]", _record, x=4, path=marker),
        ]
        results = run_jobs(jobs)
        assert [r.value for r in results] == [3, 3, 4]
        assert [r.name for r in results] == ["a[3]", "b[3]", "c[4]"]
        # Only two executions happened; the duplicate reports cached.
        with open(marker) as handle:
            assert len(handle.readlines()) == 2
        assert results[1].cached and not results[0].cached

    def test_dedup_respects_differing_seeds(self, tmp_path):
        marker = str(tmp_path / "calls")
        jobs = [
            Job.create("a", _record, seed=1, x=3, path=marker),
            Job.create("b", _record, seed=2, x=3, path=marker),
        ]
        run_jobs(jobs)
        with open(marker) as handle:
            assert len(handle.readlines()) == 2

    def test_pool_dedup_matches_inline(self):
        jobs = [
            Job.create(f"dup{i}", _square, x=7) for i in range(6)
        ] + [Job.create("other", _square, x=2)]
        inline = [r.value for r in run_jobs(jobs, max_workers=1)]
        pooled = [r.value for r in run_jobs(jobs, max_workers=4)]
        assert inline == pooled == [49] * 6 + [4]
