"""Determinism regression: jobs=1 and jobs=4 must be bit-identical.

Every job owns an explicit seed and the Monte-Carlo block partition is
fixed independently of the worker count, so fanning an experiment out
over a process pool must change nothing but wall-clock time. These tests
run the real figure pipelines both ways at reduced scale and compare
exact values — no tolerances.
"""

import pytest

from repro.experiments import (
    run_fig3_1,
    run_fig6_1,
    run_fig7_1,
    run_fig7_2_7_3,
    run_fig7_4_7_5,
    run_fig7_6,
    run_sweep_upgraded_fraction_measured,
)
from repro.reliability.analytical import ReliabilityParams
from repro.reliability.montecarlo import BLOCK_CHANNELS, MonteCarloReliability
from repro.runner import ResultCache
from repro.workloads.spec import ALL_MIXES


def _outcome_tuple(outcome):
    return (
        outcome.sdc_machines_arcc,
        outcome.sdc_machines_sccdcd,
        outcome.due_machines_sccdcd,
        outcome.due_machines_sparing,
    )


class TestMonteCarloParallelism:
    def test_jobs_1_vs_4_identical_counts(self):
        """Same seed, multiple blocks: SDC/DUE counts must match exactly."""
        channels = 2 * BLOCK_CHANNELS + 17  # three blocks, one partial
        mc = MonteCarloReliability(
            ReliabilityParams(rate_multiplier=50.0), seed=0xD37
        )
        sequential = mc.run(channels, 7.0, jobs=1)
        parallel = mc.run(channels, 7.0, jobs=4)
        assert _outcome_tuple(sequential) == _outcome_tuple(parallel)
        assert sequential.channels == parallel.channels == channels
        assert sequential.due_machines_sccdcd > 0  # non-trivial population

    def test_block_partition_is_prefix_stable(self):
        """Growing the population extends, never reshuffles, the blocks."""
        mc = MonteCarloReliability(
            ReliabilityParams(rate_multiplier=50.0), seed=0xD37
        )
        small = mc._blocks(BLOCK_CHANNELS)
        large = mc._blocks(3 * BLOCK_CHANNELS)
        assert large[0] == small[0]


class TestFigureParallelism:
    def test_fig3_1_series_identical(self):
        a = run_fig3_1(years=3, channels=80, jobs=1)
        b = run_fig3_1(years=3, channels=80, jobs=4)
        assert a.series == b.series

    def test_fig6_1_cells_and_monte_carlo_identical(self):
        kwargs = dict(
            lifespans=(7,),
            multipliers=(1.0, 4.0),
            monte_carlo_channels=2 * BLOCK_CHANNELS,
            monte_carlo_years=3.0,
        )
        a = run_fig6_1(jobs=1, **kwargs)
        b = run_fig6_1(jobs=4, **kwargs)
        assert a.cells == b.cells
        assert a.monte_carlo == b.monte_carlo

    def test_fig7_1_rows_identical(self):
        a = run_fig7_1(
            mixes=ALL_MIXES[:4], instructions_per_core=4_000, jobs=1
        )
        b = run_fig7_1(
            mixes=ALL_MIXES[:4], instructions_per_core=4_000, jobs=4
        )
        assert [vars(r) for r in a.rows] == [vars(r) for r in b.rows]

    def test_fig7_6_overheads_identical(self):
        a = run_fig7_6(years=3, channels=60, jobs=1)
        b = run_fig7_6(years=3, channels=60, jobs=4)
        assert a.overhead == b.overhead

    def test_fig7_2_7_3_ratios_identical(self):
        """Batched-engine per-(mix, point) jobs: jobs=1 == jobs=4."""
        kwargs = dict(mixes=ALL_MIXES[:3], instructions_per_core=4_000)
        a = run_fig7_2_7_3(jobs=1, **kwargs)
        b = run_fig7_2_7_3(jobs=4, **kwargs)
        assert a.power_ratio == b.power_ratio
        assert a.performance_ratio == b.performance_ratio

    def test_fig7_4_7_5_series_identical(self):
        a = run_fig7_4_7_5(years=3, channels=120, jobs=1)
        b = run_fig7_4_7_5(years=3, channels=120, jobs=4)
        assert a.power_overhead == b.power_overhead
        assert a.performance_overhead == b.performance_overhead
        assert a.power_ci == b.power_ci

    def test_sensitivity_sweep_identical(self):
        kwargs = dict(
            mixes=ALL_MIXES[:3],
            fractions=(0.0, 0.25, 1.0),
            instructions_per_core=4_000,
        )
        a = run_sweep_upgraded_fraction_measured(jobs=1, **kwargs)
        b = run_sweep_upgraded_fraction_measured(jobs=4, **kwargs)
        assert a.ratios == b.ratios


class TestCacheReproducibility:
    """A warm cache must replay exactly what the cold run computed."""

    def test_fig7_2_cache_hits_reproduce_cold_run(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        kwargs = dict(mixes=ALL_MIXES[:2], instructions_per_core=4_000)
        cold = run_fig7_2_7_3(jobs=1, cache=cache, **kwargs)
        warm = run_fig7_2_7_3(jobs=4, cache=cache, **kwargs)
        assert cold.power_ratio == warm.power_ratio
        assert cold.performance_ratio == warm.performance_ratio

    def test_cache_shares_points_across_figures(self, tmp_path):
        """The fault-free ARCC point is one entry for fig7.1/7.2/sens."""
        from repro.experiments import plan_fig7_1, plan_fig7_2_7_3
        from repro.experiments.sensitivity import (
            plan_sweep_upgraded_fraction_measured,
        )

        cache = ResultCache(str(tmp_path / "cache"))
        mixes = ALL_MIXES[:1]
        fig71 = plan_fig7_1(mixes=mixes, instructions_per_core=4_000)
        fig72 = plan_fig7_2_7_3(mixes=mixes, instructions_per_core=4_000)
        sens = plan_sweep_upgraded_fraction_measured(
            mixes=mixes, fractions=(0.0, 1.0), instructions_per_core=4_000
        )
        arcc_point = fig71.jobs[1]  # (Mix1, ARCC, 0.0)
        baseline_point = fig72.jobs[0]  # fig7.2's fault-free job
        zero_point = sens.jobs[0]  # sensitivity's 0.0 job
        assert cache.key(arcc_point) == cache.key(baseline_point)
        assert cache.key(arcc_point) == cache.key(zero_point)
        # And the baseline-organization / faulty points do NOT collide.
        assert cache.key(fig71.jobs[0]) != cache.key(arcc_point)
        assert cache.key(fig72.jobs[1]) != cache.key(baseline_point)


@pytest.mark.slow
class TestFigureParallelismHeavy:
    """Closer-to-paper-scale determinism sweep (kept out of quick loops)."""

    def test_fig3_1_default_multipliers_identical(self):
        a = run_fig3_1(years=7, channels=300, jobs=1)
        b = run_fig3_1(years=7, channels=300, jobs=4)
        assert a.series == b.series
