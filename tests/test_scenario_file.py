"""Tests for the TOML/JSON scenario-file loader.

The load-bearing guarantees: ``load -> dump -> load`` round-trips
exactly; validation rejects unknown keys, wrong types and negative
rates with the offending key path in the message; the shipped example
files are valid; and ``repro fleet --scenario-file`` works end to end
on a tiny two-slice file.
"""

import json

import pytest

from repro.config import ARCC_MEMORY_CONFIG, BASELINE_MEMORY_CONFIG
from repro.fleet import (
    FleetScenario,
    RatePhase,
    ScenarioFileError,
    SubPopulation,
    dump_scenario_json,
    load_scenario_file,
    scenario_from_mapping,
    scenario_to_mapping,
)

TINY_TOML = """
name = "tiny"
description = "two-slice test fleet"
seed = 7
channels = 400

[[populations]]
name = "fresh"
channels = 300
config = "arcc"
lifespan_years = 2.0

[[populations.schedule]]
duration_years = 0.5
multiplier = 4.0

[[populations]]
name = "legacy"
channels = 100
config = "baseline"
rate_multiplier = 2.0
lifespan_years = 1.0

[populations.rates]
bit = 20.0
"""


@pytest.fixture
def tiny_toml(tmp_path):
    path = tmp_path / "tiny.toml"
    path.write_text(TINY_TOML)
    return path


def _mapping():
    return json.loads(
        json.dumps(
            scenario_to_mapping(
                FleetScenario(
                    name="m",
                    description="d",
                    populations=(
                        SubPopulation(
                            name="a",
                            channels=64,
                            schedule=(
                                RatePhase(duration_years=0.5, multiplier=3.0),
                            ),
                        ),
                        SubPopulation(
                            name="b",
                            channels=32,
                            config=BASELINE_MEMORY_CONFIG,
                            rate_multiplier=4.0,
                            lifespan_years=3.0,
                        ),
                    ),
                ),
                seed=11,
                channels=96,
                policies=("arcc", "lotecc"),
            )
        )
    )


class TestLoading:
    def test_toml_loads(self, tiny_toml):
        spec = load_scenario_file(tiny_toml)
        assert spec.scenario.name == "tiny"
        assert spec.seed == 7
        assert spec.channels == 400
        assert spec.policies is None
        fresh, legacy = spec.scenario.populations
        assert fresh.config == ARCC_MEMORY_CONFIG
        assert fresh.schedule == (
            RatePhase(duration_years=0.5, multiplier=4.0),
        )
        assert legacy.config == BASELINE_MEMORY_CONFIG
        assert legacy.rates.bit == 20.0
        # Omitted rate fields keep the SC'12 defaults.
        assert legacy.rates.row == 8.2

    def test_json_loads(self, tmp_path):
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(_mapping()))
        spec = load_scenario_file(path)
        assert spec.scenario.name == "m"
        assert spec.policies == ("arcc", "lotecc")

    def test_shipped_examples_load(self):
        toml = load_scenario_file("examples/scenarios/mixed_generations.toml")
        assert toml.scenario.total_channels == toml.channels == 20_000
        assert toml.policies == ("arcc", "sccdcd", "lotecc")
        js = load_scenario_file("examples/scenarios/burnin_study.json")
        assert len(js.scenario.populations[0].schedule) == 2
        spatial = load_scenario_file(
            "examples/scenarios/multi-row-cluster.toml"
        )
        clustered, control = spatial.scenario.populations
        assert clustered.spatial.kind == "multi-row-cluster"
        assert clustered.spatial.fraction == 0.8
        assert control.spatial is None

    def test_unsupported_extension(self, tmp_path):
        path = tmp_path / "tiny.yaml"
        path.write_text("name: tiny")
        with pytest.raises(ScenarioFileError, match="unsupported extension"):
            load_scenario_file(path)

    def test_invalid_toml_reports_file(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("name = [unclosed")
        with pytest.raises(ScenarioFileError, match="invalid TOML"):
            load_scenario_file(path)

    def test_error_prefixed_with_path(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x"}))
        with pytest.raises(ScenarioFileError, match="bad.json"):
            load_scenario_file(path)


class TestRoundTrip:
    def test_mapping_round_trip_exact(self):
        first = scenario_from_mapping(_mapping())
        again = scenario_from_mapping(
            scenario_to_mapping(
                first.scenario,
                seed=first.seed,
                channels=first.channels,
                policies=first.policies,
            )
        )
        assert again == first

    def test_file_round_trip_exact(self, tiny_toml, tmp_path):
        first = load_scenario_file(tiny_toml)
        dumped = tmp_path / "dumped.json"
        dump_scenario_json(
            first.scenario, dumped, seed=first.seed, channels=first.channels
        )
        again = load_scenario_file(dumped)
        assert again == first

    def test_custom_config_dumps_as_organization_table(self):
        """A non-Table-7.1 config round-trips via ``organizations``."""
        from dataclasses import replace

        custom = replace(ARCC_MEMORY_CONFIG, name="custom", channels=4)
        scenario = FleetScenario(
            name="x",
            description="",
            populations=(
                SubPopulation(name="a", channels=1, config=custom),
            ),
        )
        mapping = scenario_to_mapping(scenario)
        assert mapping["organizations"]["custom"]["channels"] == 4
        assert mapping["populations"][0]["config"] == "custom"
        again = scenario_from_mapping(mapping)
        assert again.scenario == scenario
        assert again.organizations == (custom,)

    def test_custom_config_shadowing_builtin_name_not_dumpable(self):
        from dataclasses import replace

        # Same *name* as a built-in but a different table: ambiguous in
        # the file format, so the dump refuses.
        impostor = replace(ARCC_MEMORY_CONFIG, name="arcc", channels=4)
        scenario = FleetScenario(
            name="x",
            description="",
            populations=(
                SubPopulation(name="a", channels=1, config=impostor),
            ),
        )
        with pytest.raises(ScenarioFileError, match="shadows a built-in"):
            scenario_to_mapping(scenario)


class TestValidation:
    def test_unknown_top_level_key(self):
        raw = _mapping()
        raw["chanels"] = 5
        with pytest.raises(ScenarioFileError, match=r"chanels.*did you mean"):
            scenario_from_mapping(raw)

    def test_unknown_population_key_names_index(self):
        raw = _mapping()
        raw["populations"][1]["chanels"] = 5
        with pytest.raises(
            ScenarioFileError,
            match=r"populations\[1\]\.chanels.*did you mean 'channels'",
        ):
            scenario_from_mapping(raw)

    def test_wrong_type_names_path(self):
        raw = _mapping()
        raw["populations"][0]["channels"] = "lots"
        with pytest.raises(
            ScenarioFileError,
            match=r"populations\[0\]\.channels: expected int, got str",
        ):
            scenario_from_mapping(raw)

    def test_bool_is_not_an_int(self):
        raw = _mapping()
        raw["populations"][0]["channels"] = True
        with pytest.raises(
            ScenarioFileError, match=r"populations\[0\]\.channels"
        ):
            scenario_from_mapping(raw)

    def test_negative_rate_names_full_path(self):
        raw = _mapping()
        raw["populations"][0]["rates"]["bit"] = -1.0
        with pytest.raises(
            ScenarioFileError,
            match=r"populations\[0\]\.rates\.bit: must be >= 0",
        ):
            scenario_from_mapping(raw)

    def test_zero_channels_rejected(self):
        raw = _mapping()
        raw["populations"][0]["channels"] = 0
        with pytest.raises(
            ScenarioFileError, match=r"populations\[0\]\.channels: must be >= 1"
        ):
            scenario_from_mapping(raw)

    def test_bad_schedule_phase_names_index(self):
        raw = _mapping()
        raw["populations"][0]["schedule"][0]["duration_years"] = 0
        with pytest.raises(
            ScenarioFileError,
            match=r"populations\[0\]\.schedule\[0\]\.duration_years: must be > 0",
        ):
            scenario_from_mapping(raw)

    def test_missing_required_keys(self):
        with pytest.raises(ScenarioFileError, match="missing required key 'name'"):
            scenario_from_mapping({"populations": [{"name": "a", "channels": 1}]})
        with pytest.raises(
            ScenarioFileError, match="missing required key 'populations'"
        ):
            scenario_from_mapping({"name": "x"})
        with pytest.raises(
            ScenarioFileError, match=r"populations\[0\].*'channels'"
        ):
            scenario_from_mapping(
                {"name": "x", "populations": [{"name": "a"}]}
            )

    def test_unknown_config_name(self):
        raw = _mapping()
        raw["populations"][0]["config"] = "ddr9"
        with pytest.raises(
            ScenarioFileError,
            match=r"populations\[0\]\.config: unknown memory config 'ddr9'",
        ):
            scenario_from_mapping(raw)

    def test_duplicate_slice_names_rejected(self):
        raw = _mapping()
        raw["populations"][1]["name"] = raw["populations"][0]["name"]
        with pytest.raises(ScenarioFileError, match="unique"):
            scenario_from_mapping(raw)

    def test_empty_populations_rejected(self):
        raw = _mapping()
        raw["populations"] = []
        with pytest.raises(
            ScenarioFileError, match="at least one sub-population"
        ):
            scenario_from_mapping(raw)

    def test_policies_must_be_strings(self):
        raw = _mapping()
        raw["policies"] = ["arcc", 3]
        with pytest.raises(
            ScenarioFileError, match=r"policies\[1\]: expected str"
        ):
            scenario_from_mapping(raw)


class TestCLI:
    def test_scenario_file_end_to_end(self, tiny_toml, capsys):
        from repro.cli import main

        assert main(["fleet", "--scenario-file", str(tiny_toml)]) == 0
        out = capsys.readouterr().out
        assert "Fleet scenario 'tiny'" in out
        assert "fresh" in out and "legacy" in out
        # The file's channels=400 default rescales the 400-channel fleet.
        assert "400 channels" in out

    def test_scenario_file_with_policies_flag(self, tiny_toml, capsys):
        from repro.cli import main

        code = main(
            [
                "fleet",
                "--scenario-file",
                str(tiny_toml),
                "--policies",
                "arcc,lotecc",
                "--channels",
                "200",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Policy comparison 'tiny'" in out
        assert "Fleet decision table" in out
        assert "±" in out
        assert "policies arcc,lotecc" in out

    def test_cli_flag_overrides_file_seed(self, tiny_toml, capsys):
        from repro.cli import main

        main(["fleet", "--scenario-file", str(tiny_toml), "--seed", "123"])
        first = capsys.readouterr().out
        main(["fleet", "--scenario-file", str(tiny_toml)])
        second = capsys.readouterr().out

        def table_lines(text):
            return [
                line
                for line in text.splitlines()
                if "±" in line
            ]

        assert table_lines(first) != table_lines(second)

    def test_file_defaults_do_not_leak_onto_builtins(self, tiny_toml, capsys):
        """A built-in named alongside --scenario-file keeps its own
        channel count and seed; the file's defaults only cover its own
        scenario."""
        from repro.cli import main

        main(["fleet", "steady", "--scenario-file", str(tiny_toml)])
        combined = capsys.readouterr().out
        main(["fleet", "steady"])
        alone = capsys.readouterr().out

        def steady_lines(text):
            return [
                line
                for line in text.splitlines()
                if line.startswith(("Fleet scenario 'steady'", "arcc-1x"))
            ]

        assert steady_lines(combined) == steady_lines(alone)
        # 20000 built-in channels + the file's 400.
        assert "2 scenario(s), 20400 channels" in combined

    def test_bad_file_is_a_clean_error(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "bad.toml"
        path.write_text('name = "x"\n')
        with pytest.raises(SystemExit, match="missing required key"):
            main(["fleet", "--scenario-file", str(path)])


ORGS_TOML = """
name = "orgs"
description = "custom organization tables"

[organizations.quad-x8]
io_width = 8
channels = 4
ranks_per_channel = 2
devices_per_rank = 18
data_devices_per_rank = 16

[organizations.tri-rank-x4]
io_width = 4
channels = 2
ranks_per_channel = 3
devices_per_rank = 36
data_devices_per_rank = 32

[[populations]]
name = "quad"
channels = 64
config = "quad-x8"

[[populations]]
name = "tri"
channels = 32
config = "tri-rank-x4"
"""


def _orgs_mapping():
    import tomllib

    return tomllib.loads(ORGS_TOML)


class TestOrganizationSection:
    def test_load_builds_custom_configs(self):
        spec = scenario_from_mapping(_orgs_mapping())
        quad, tri = spec.organizations
        assert (quad.name, quad.channels, quad.io_width) == ("quad-x8", 4, 8)
        assert (tri.ranks_per_channel, tri.devices_per_rank) == (3, 36)
        by_slice = {p.name: p.config for p in spec.scenario.populations}
        assert by_slice["quad"] is quad
        assert by_slice["tri"] is tri
        # Optional geometry keeps the MemoryConfig defaults.
        assert quad.page_bytes == 4096
        assert quad.banks_per_device == 8

    def test_population_may_mix_builtin_and_custom(self):
        raw = _orgs_mapping()
        raw["populations"].append(
            {"name": "stock", "channels": 16, "config": "arcc"}
        )
        spec = scenario_from_mapping(raw)
        assert {p.config.name for p in spec.scenario.populations} == {
            "quad-x8",
            "tri-rank-x4",
            "ARCC",
        }

    def test_unknown_org_field_suggests(self):
        raw = _orgs_mapping()
        raw["organizations"]["quad-x8"]["io_widht"] = 8
        with pytest.raises(
            ScenarioFileError,
            match=r"organizations\.quad-x8\.io_widht.*did you mean 'io_width'",
        ):
            scenario_from_mapping(raw)

    def test_missing_required_org_key_names_path(self):
        raw = _orgs_mapping()
        del raw["organizations"]["quad-x8"]["devices_per_rank"]
        with pytest.raises(
            ScenarioFileError,
            match=r"organizations\.quad-x8: missing required key "
            r"'devices_per_rank'",
        ):
            scenario_from_mapping(raw)

    def test_unsupported_io_width_rejected(self):
        raw = _orgs_mapping()
        raw["organizations"]["quad-x8"]["io_width"] = 16
        with pytest.raises(
            ScenarioFileError,
            match=r"organizations\.quad-x8\.io_width.*x16.*supported: 4, 8",
        ):
            scenario_from_mapping(raw)

    @pytest.mark.parametrize("key", ["page_bytes", "cacheline_bytes"])
    def test_non_power_of_two_rejected(self, key):
        raw = _orgs_mapping()
        raw["organizations"]["quad-x8"][key] = 3000
        with pytest.raises(
            ScenarioFileError,
            match=rf"organizations\.quad-x8\.{key}.*power of two",
        ):
            scenario_from_mapping(raw)

    def test_page_not_multiple_of_line_rejected(self):
        raw = _orgs_mapping()
        raw["organizations"]["quad-x8"]["cacheline_bytes"] = 64
        raw["organizations"]["quad-x8"]["page_bytes"] = 32
        with pytest.raises(
            ScenarioFileError,
            match=r"organizations\.quad-x8\.page_bytes.*multiple of",
        ):
            scenario_from_mapping(raw)

    def test_capacity_not_multiple_of_page_rejected(self):
        raw = _orgs_mapping()
        raw["organizations"]["quad-x8"]["capacity_per_channel_bytes"] = 4097
        with pytest.raises(
            ScenarioFileError,
            match=r"capacity_per_channel_bytes.*multiple of page_bytes",
        ):
            scenario_from_mapping(raw)

    def test_all_data_devices_rejected_with_path(self):
        raw = _orgs_mapping()
        raw["organizations"]["quad-x8"]["data_devices_per_rank"] = 18
        with pytest.raises(
            ScenarioFileError,
            match=r"organizations\.quad-x8: .*redundant device",
        ):
            scenario_from_mapping(raw)

    def test_unreferenced_org_rejected(self):
        """An unused table cannot round-trip (dumps emit only referenced
        organizations), so the loader rejects it up front."""
        raw = _orgs_mapping()
        raw["organizations"]["spare"] = dict(
            raw["organizations"]["quad-x8"]
        )
        with pytest.raises(
            ScenarioFileError,
            match=r"organizations\.spare.*not referenced by any population",
        ):
            scenario_from_mapping(raw)

    def test_org_shadowing_builtin_rejected(self):
        raw = _orgs_mapping()
        raw["organizations"]["arcc"] = raw["organizations"].pop("quad-x8")
        with pytest.raises(
            ScenarioFileError, match=r"organizations\.arcc.*shadows a built-in"
        ):
            scenario_from_mapping(raw)

    def test_population_config_suggests_over_custom_names(self):
        raw = _orgs_mapping()
        raw["populations"][0]["config"] = "quad-x9"
        with pytest.raises(
            ScenarioFileError,
            match=r"populations\[0\]\.config.*did you mean 'quad-x8'",
        ):
            scenario_from_mapping(raw)

    def test_round_trip_with_custom_orgs_exact(self, tmp_path):
        path = tmp_path / "orgs.toml"
        path.write_text(ORGS_TOML)
        first = load_scenario_file(path)
        dumped = tmp_path / "orgs.json"
        dump_scenario_json(first.scenario, dumped)
        again = load_scenario_file(dumped)
        assert again.scenario == first.scenario
        assert again.organizations == first.organizations

    def test_shipped_custom_organizations_example_is_valid(self):
        from pathlib import Path

        path = (
            Path(__file__).resolve().parent.parent
            / "examples"
            / "scenarios"
            / "custom_organizations.toml"
        )
        spec = load_scenario_file(path)
        assert {c.name for c in spec.organizations} == {
            "quad-x8",
            "tri-rank-x4",
        }
        assert spec.policies == ("arcc", "sccdcd", "lotecc")
        # Round-trips through the dump format too.
        mapping = scenario_to_mapping(spec.scenario)
        assert scenario_from_mapping(mapping).scenario == spec.scenario


class TestOrganizationProperties:
    """Hypothesis sweeps over the organization-table schema."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    org_tables = st.fixed_dictionaries(
        {
            "io_width": st.sampled_from([4, 8]),
            "channels": st.integers(min_value=1, max_value=8),
            "ranks_per_channel": st.integers(min_value=1, max_value=5),
            "devices_per_rank": st.integers(min_value=2, max_value=40),
            "banks_per_device": st.integers(min_value=1, max_value=16),
            "pages_per_row": st.integers(min_value=1, max_value=4),
            "page_bytes": st.sampled_from([1024, 2048, 4096, 8192]),
            "cacheline_bytes": st.sampled_from([32, 64, 128]),
        }
    )

    @settings(max_examples=25, deadline=None)
    @given(table=org_tables, data=st.data())
    def test_valid_tables_round_trip_exactly(self, table, data):
        table = dict(table)
        table["data_devices_per_rank"] = data.draw(
            self.st.integers(
                min_value=1, max_value=table["devices_per_rank"] - 1
            )
        )
        if table["page_bytes"] % table["cacheline_bytes"]:
            table["cacheline_bytes"] = 64
        table["capacity_per_channel_bytes"] = table["page_bytes"] * data.draw(
            self.st.integers(min_value=1, max_value=1 << 20)
        )
        raw = {
            "name": "prop",
            "description": "",
            "organizations": {"custom": table},
            "populations": [
                {"name": "only", "channels": 8, "config": "custom"}
            ],
        }
        spec = scenario_from_mapping(raw)
        mapping = scenario_to_mapping(spec.scenario)
        assert scenario_from_mapping(mapping).scenario == spec.scenario
        (config,) = spec.organizations
        for key, value in table.items():
            assert getattr(config, key) == value

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_invalid_tables_rejected_with_dotted_path(self, data):
        base = {
            "io_width": 8,
            "channels": 2,
            "ranks_per_channel": 2,
            "devices_per_rank": 18,
            "data_devices_per_rank": 16,
        }
        mutation = data.draw(
            self.st.sampled_from(
                [
                    ("io_width", 16),
                    ("io_width", 0),
                    ("channels", 0),
                    ("devices_per_rank", "many"),
                    ("page_bytes", 1000),
                    ("cacheline_bytes", 48),
                    ("data_devices_per_rank", 18),
                    ("data_devices_per_rank", 19),
                ]
            )
        )
        key, value = mutation
        table = dict(base)
        table[key] = value
        raw = {
            "name": "prop",
            "organizations": {"bad": table},
            "populations": [
                {"name": "only", "channels": 8, "config": "bad"}
            ],
        }
        with pytest.raises(ScenarioFileError, match=r"organizations\.bad"):
            scenario_from_mapping(raw)

    @settings(max_examples=10, deadline=None)
    @given(
        st.sampled_from(
            ["quad", "quadx8", "quad_x8", "tri-rank", "trirankx4"]
        )
    )
    def test_typoed_config_reference_always_names_the_path(self, typo):
        raw = _orgs_mapping()
        raw["populations"][0]["config"] = typo
        with pytest.raises(
            ScenarioFileError, match=r"populations\[0\]\.config"
        ):
            scenario_from_mapping(raw)
