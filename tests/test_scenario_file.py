"""Tests for the TOML/JSON scenario-file loader.

The load-bearing guarantees: ``load -> dump -> load`` round-trips
exactly; validation rejects unknown keys, wrong types and negative
rates with the offending key path in the message; the shipped example
files are valid; and ``repro fleet --scenario-file`` works end to end
on a tiny two-slice file.
"""

import json

import pytest

from repro.config import ARCC_MEMORY_CONFIG, BASELINE_MEMORY_CONFIG
from repro.fleet import (
    FleetScenario,
    RatePhase,
    ScenarioFileError,
    SubPopulation,
    dump_scenario_json,
    load_scenario_file,
    scenario_from_mapping,
    scenario_to_mapping,
)

TINY_TOML = """
name = "tiny"
description = "two-slice test fleet"
seed = 7
channels = 400

[[populations]]
name = "fresh"
channels = 300
config = "arcc"
lifespan_years = 2.0

[[populations.schedule]]
duration_years = 0.5
multiplier = 4.0

[[populations]]
name = "legacy"
channels = 100
config = "baseline"
rate_multiplier = 2.0
lifespan_years = 1.0

[populations.rates]
bit = 20.0
"""


@pytest.fixture
def tiny_toml(tmp_path):
    path = tmp_path / "tiny.toml"
    path.write_text(TINY_TOML)
    return path


def _mapping():
    return json.loads(
        json.dumps(
            scenario_to_mapping(
                FleetScenario(
                    name="m",
                    description="d",
                    populations=(
                        SubPopulation(
                            name="a",
                            channels=64,
                            schedule=(
                                RatePhase(duration_years=0.5, multiplier=3.0),
                            ),
                        ),
                        SubPopulation(
                            name="b",
                            channels=32,
                            config=BASELINE_MEMORY_CONFIG,
                            rate_multiplier=4.0,
                            lifespan_years=3.0,
                        ),
                    ),
                ),
                seed=11,
                channels=96,
                policies=("arcc", "lotecc"),
            )
        )
    )


class TestLoading:
    def test_toml_loads(self, tiny_toml):
        spec = load_scenario_file(tiny_toml)
        assert spec.scenario.name == "tiny"
        assert spec.seed == 7
        assert spec.channels == 400
        assert spec.policies is None
        fresh, legacy = spec.scenario.populations
        assert fresh.config == ARCC_MEMORY_CONFIG
        assert fresh.schedule == (
            RatePhase(duration_years=0.5, multiplier=4.0),
        )
        assert legacy.config == BASELINE_MEMORY_CONFIG
        assert legacy.rates.bit == 20.0
        # Omitted rate fields keep the SC'12 defaults.
        assert legacy.rates.row == 8.2

    def test_json_loads(self, tmp_path):
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(_mapping()))
        spec = load_scenario_file(path)
        assert spec.scenario.name == "m"
        assert spec.policies == ("arcc", "lotecc")

    def test_shipped_examples_load(self):
        toml = load_scenario_file("examples/scenarios/mixed_generations.toml")
        assert toml.scenario.total_channels == toml.channels == 20_000
        assert toml.policies == ("arcc", "sccdcd", "lotecc")
        js = load_scenario_file("examples/scenarios/burnin_study.json")
        assert len(js.scenario.populations[0].schedule) == 2

    def test_unsupported_extension(self, tmp_path):
        path = tmp_path / "tiny.yaml"
        path.write_text("name: tiny")
        with pytest.raises(ScenarioFileError, match="unsupported extension"):
            load_scenario_file(path)

    def test_invalid_toml_reports_file(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("name = [unclosed")
        with pytest.raises(ScenarioFileError, match="invalid TOML"):
            load_scenario_file(path)

    def test_error_prefixed_with_path(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x"}))
        with pytest.raises(ScenarioFileError, match="bad.json"):
            load_scenario_file(path)


class TestRoundTrip:
    def test_mapping_round_trip_exact(self):
        first = scenario_from_mapping(_mapping())
        again = scenario_from_mapping(
            scenario_to_mapping(
                first.scenario,
                seed=first.seed,
                channels=first.channels,
                policies=first.policies,
            )
        )
        assert again == first

    def test_file_round_trip_exact(self, tiny_toml, tmp_path):
        first = load_scenario_file(tiny_toml)
        dumped = tmp_path / "dumped.json"
        dump_scenario_json(
            first.scenario, dumped, seed=first.seed, channels=first.channels
        )
        again = load_scenario_file(dumped)
        assert again == first

    def test_unnamed_config_not_dumpable(self):
        from dataclasses import replace

        custom = replace(ARCC_MEMORY_CONFIG, name="custom", channels=4)
        scenario = FleetScenario(
            name="x",
            description="",
            populations=(
                SubPopulation(name="a", channels=1, config=custom),
            ),
        )
        with pytest.raises(ScenarioFileError, match="no file-format name"):
            scenario_to_mapping(scenario)


class TestValidation:
    def test_unknown_top_level_key(self):
        raw = _mapping()
        raw["chanels"] = 5
        with pytest.raises(ScenarioFileError, match=r"chanels.*did you mean"):
            scenario_from_mapping(raw)

    def test_unknown_population_key_names_index(self):
        raw = _mapping()
        raw["populations"][1]["chanels"] = 5
        with pytest.raises(
            ScenarioFileError,
            match=r"populations\[1\]\.chanels.*did you mean 'channels'",
        ):
            scenario_from_mapping(raw)

    def test_wrong_type_names_path(self):
        raw = _mapping()
        raw["populations"][0]["channels"] = "lots"
        with pytest.raises(
            ScenarioFileError,
            match=r"populations\[0\]\.channels: expected int, got str",
        ):
            scenario_from_mapping(raw)

    def test_bool_is_not_an_int(self):
        raw = _mapping()
        raw["populations"][0]["channels"] = True
        with pytest.raises(
            ScenarioFileError, match=r"populations\[0\]\.channels"
        ):
            scenario_from_mapping(raw)

    def test_negative_rate_names_full_path(self):
        raw = _mapping()
        raw["populations"][0]["rates"]["bit"] = -1.0
        with pytest.raises(
            ScenarioFileError,
            match=r"populations\[0\]\.rates\.bit: must be >= 0",
        ):
            scenario_from_mapping(raw)

    def test_zero_channels_rejected(self):
        raw = _mapping()
        raw["populations"][0]["channels"] = 0
        with pytest.raises(
            ScenarioFileError, match=r"populations\[0\]\.channels: must be >= 1"
        ):
            scenario_from_mapping(raw)

    def test_bad_schedule_phase_names_index(self):
        raw = _mapping()
        raw["populations"][0]["schedule"][0]["duration_years"] = 0
        with pytest.raises(
            ScenarioFileError,
            match=r"populations\[0\]\.schedule\[0\]\.duration_years: must be > 0",
        ):
            scenario_from_mapping(raw)

    def test_missing_required_keys(self):
        with pytest.raises(ScenarioFileError, match="missing required key 'name'"):
            scenario_from_mapping({"populations": [{"name": "a", "channels": 1}]})
        with pytest.raises(
            ScenarioFileError, match="missing required key 'populations'"
        ):
            scenario_from_mapping({"name": "x"})
        with pytest.raises(
            ScenarioFileError, match=r"populations\[0\].*'channels'"
        ):
            scenario_from_mapping(
                {"name": "x", "populations": [{"name": "a"}]}
            )

    def test_unknown_config_name(self):
        raw = _mapping()
        raw["populations"][0]["config"] = "ddr9"
        with pytest.raises(
            ScenarioFileError,
            match=r"populations\[0\]\.config: unknown memory config 'ddr9'",
        ):
            scenario_from_mapping(raw)

    def test_duplicate_slice_names_rejected(self):
        raw = _mapping()
        raw["populations"][1]["name"] = raw["populations"][0]["name"]
        with pytest.raises(ScenarioFileError, match="unique"):
            scenario_from_mapping(raw)

    def test_empty_populations_rejected(self):
        raw = _mapping()
        raw["populations"] = []
        with pytest.raises(
            ScenarioFileError, match="at least one sub-population"
        ):
            scenario_from_mapping(raw)

    def test_policies_must_be_strings(self):
        raw = _mapping()
        raw["policies"] = ["arcc", 3]
        with pytest.raises(
            ScenarioFileError, match=r"policies\[1\]: expected str"
        ):
            scenario_from_mapping(raw)


class TestCLI:
    def test_scenario_file_end_to_end(self, tiny_toml, capsys):
        from repro.cli import main

        assert main(["fleet", "--scenario-file", str(tiny_toml)]) == 0
        out = capsys.readouterr().out
        assert "Fleet scenario 'tiny'" in out
        assert "fresh" in out and "legacy" in out
        # The file's channels=400 default rescales the 400-channel fleet.
        assert "400 channels" in out

    def test_scenario_file_with_policies_flag(self, tiny_toml, capsys):
        from repro.cli import main

        code = main(
            [
                "fleet",
                "--scenario-file",
                str(tiny_toml),
                "--policies",
                "arcc,lotecc",
                "--channels",
                "200",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Policy comparison 'tiny'" in out
        assert "Fleet decision table" in out
        assert "±" in out
        assert "policies arcc,lotecc" in out

    def test_cli_flag_overrides_file_seed(self, tiny_toml, capsys):
        from repro.cli import main

        main(["fleet", "--scenario-file", str(tiny_toml), "--seed", "123"])
        first = capsys.readouterr().out
        main(["fleet", "--scenario-file", str(tiny_toml)])
        second = capsys.readouterr().out

        def table_lines(text):
            return [
                line
                for line in text.splitlines()
                if "±" in line
            ]

        assert table_lines(first) != table_lines(second)

    def test_file_defaults_do_not_leak_onto_builtins(self, tiny_toml, capsys):
        """A built-in named alongside --scenario-file keeps its own
        channel count and seed; the file's defaults only cover its own
        scenario."""
        from repro.cli import main

        main(["fleet", "steady", "--scenario-file", str(tiny_toml)])
        combined = capsys.readouterr().out
        main(["fleet", "steady"])
        alone = capsys.readouterr().out

        def steady_lines(text):
            return [
                line
                for line in text.splitlines()
                if line.startswith(("Fleet scenario 'steady'", "arcc-1x"))
            ]

        assert steady_lines(combined) == steady_lines(alone)
        # 20000 built-in channels + the file's 400.
        assert "2 scenario(s), 20400 channels" in combined

    def test_bad_file_is_a_clean_error(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "bad.toml"
        path.write_text('name = "x"\n')
        with pytest.raises(SystemExit, match="missing required key"):
            main(["fleet", "--scenario-file", str(path)])
