"""Tests for the sensitivity-study module and mapping-policy differences."""

import pytest

from repro.config import ARCC_MEMORY_CONFIG
from repro.dram.addressing import AddressMapping, MappingPolicy
from repro.experiments.sensitivity import (
    sweep_page_size,
    sweep_scrub_interval,
    sweep_upgraded_fraction,
)
from repro.faults.types import FaultType
from repro.util.units import KB


class TestScrubIntervalSweep:
    def test_sdc_monotone_in_interval(self):
        sweep = sweep_scrub_interval()
        hours = sorted(sweep.points)
        sdcs = [sweep.points[h][0] for h in hours]
        assert sdcs == sorted(sdcs)

    def test_bandwidth_monotone_decreasing(self):
        sweep = sweep_scrub_interval()
        hours = sorted(sweep.points)
        bws = [sweep.points[h][1] for h in hours]
        assert bws == sorted(bws, reverse=True)

    def test_paper_interval_is_affordable(self):
        """The 4h default sits inside the <0.1%-bandwidth region."""
        sweep = sweep_scrub_interval()
        assert sweep.knee_hours() >= 4.0

    def test_knee_budget_unreachable_raises(self):
        sweep = sweep_scrub_interval(intervals_hours=(0.001,))
        with pytest.raises(ValueError):
            sweep.knee_hours()

    def test_table_renders(self):
        assert "scrub interval" in sweep_scrub_interval().to_table()


class TestPageSizeSweep:
    def test_row_fraction_scales_with_page_size(self):
        sweep = sweep_page_size()
        small = sweep.fractions[2 * KB][FaultType.ROW]
        large = sweep.fractions[16 * KB][FaultType.ROW]
        assert large > small

    def test_rank_level_fractions_unchanged(self):
        """Device/lane fractions are rank-geometry facts, independent of
        page size — small pages cannot help against big faults."""
        sweep = sweep_page_size()
        for page_bytes in sweep.fractions:
            assert sweep.fractions[page_bytes][FaultType.LANE] == 1.0
            assert sweep.fractions[page_bytes][FaultType.DEVICE] == 0.5

    def test_upgrade_cost_scales_linearly(self):
        sweep = sweep_page_size()
        assert sweep.upgrade_lines[8 * KB] == 2 * sweep.upgrade_lines[4 * KB]

    def test_table_renders(self):
        assert "page size" in sweep_page_size().to_table()


class TestUpgradedFractionSweep:
    def test_extremes(self):
        curve = sweep_upgraded_fraction()
        assert curve.points[0.0] == (1.0, 1.0)
        assert curve.points[1.0] == (2.0, 0.5)

    def test_crossover_for_full_saving(self):
        """With ~37% fault-free saving, worst-case power parity with the
        baseline is crossed somewhere above half the memory upgraded —
        i.e. only rank-scale faults can ever erase the benefit."""
        curve = sweep_upgraded_fraction(
            fractions=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6)
        )
        assert curve.crossover_fraction(1.58) >= 0.5

    def test_crossover_unreachable_raises(self):
        curve = sweep_upgraded_fraction(fractions=(0.5,))
        with pytest.raises(ValueError):
            curve.crossover_fraction(1.0)

    def test_table_renders(self):
        assert "Upgraded fraction" in sweep_upgraded_fraction().to_table()


class TestMappingPoliciesDiffer:
    def test_base_fills_rows_first(self):
        """BASE: consecutive same-channel lines share a bank (and row)."""
        mapping = AddressMapping(ARCC_MEMORY_CONFIG, MappingPolicy.BASE)
        a = mapping.decode(0)
        b = mapping.decode(2)  # next line on the same channel
        assert (a.bank, a.rank, a.row) == (b.bank, b.rank, b.row)
        assert a.column != b.column

    def test_hiperf_interleaves_banks_first(self):
        """HIPERF: consecutive same-channel lines hit different banks."""
        mapping = AddressMapping(ARCC_MEMORY_CONFIG, MappingPolicy.HIPERF)
        a = mapping.decode(0)
        b = mapping.decode(2)
        assert a.bank != b.bank

    def test_close_page_interleaves_ranks_first(self):
        """CLOSE_PAGE: consecutive same-channel lines hit different ranks."""
        mapping = AddressMapping(
            ARCC_MEMORY_CONFIG, MappingPolicy.CLOSE_PAGE
        )
        a = mapping.decode(0)
        b = mapping.decode(2)
        assert a.rank != b.rank

    def test_policies_disagree_somewhere(self):
        mappings = [
            AddressMapping(ARCC_MEMORY_CONFIG, policy)
            for policy in MappingPolicy
        ]
        decodes = [
            tuple(
                (d.channel, d.rank, d.bank, d.row, d.column)
                for d in (m.decode(addr) for addr in range(64))
            )
            for m in mappings
        ]
        assert len(set(decodes)) == 3


class TestMeasuredFractionSweep:
    """The batched-engine measured upgraded-fraction sweep."""

    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.experiments.sensitivity import (
            run_sweep_upgraded_fraction_measured,
        )
        from repro.workloads.spec import ALL_MIXES

        return run_sweep_upgraded_fraction_measured(
            mixes=ALL_MIXES[:3],
            fractions=(0.0, 0.25, 1.0),
            instructions_per_core=8_000,
        )

    def test_zero_point_is_unity(self, sweep):
        for mix in sweep.mixes():
            assert sweep.ratios[(mix, 0.0)] == (1.0, 1.0)

    def test_power_monotone_in_fraction(self, sweep):
        """More upgraded pages can only cost more power on average."""
        averages = [
            sweep.average_power_ratio(f) for f in sweep.fractions
        ]
        assert averages == sorted(averages)

    def test_measured_below_worst_case(self, sweep):
        """Spatial locality keeps the measured curve under 1 + f."""
        for fraction in sweep.fractions:
            assert sweep.headroom_vs_worst_case(fraction) >= -1e-9

    def test_table_renders(self, sweep):
        table = sweep.to_table()
        assert "measured vs worst case" in table
        assert "1.000" in table

    def test_requires_zero_point(self):
        from repro.experiments.sensitivity import (
            plan_sweep_upgraded_fraction_measured,
        )

        with pytest.raises(ValueError):
            plan_sweep_upgraded_fraction_measured(fractions=(0.5, 1.0))

    def test_plan_shares_table_7_4_points_with_fig7_2(self):
        """Default grid contains every Table 7.4 fraction (cache reuse)."""
        from repro.experiments.sensitivity import DEFAULT_MEASURED_FRACTIONS
        from repro.faults.models import TABLE_7_4_TYPES, upgraded_page_fraction

        for fault_type in TABLE_7_4_TYPES:
            assert upgraded_page_fraction(fault_type) in (
                DEFAULT_MEASURED_FRACTIONS
            )
