"""Tests for declarative study campaigns (repro.fleet.study)."""

import json

import pytest

from repro.cli import main
from repro.fleet import (
    ScenarioFileError,
    expand_study,
    load_study_file,
    run_study,
    scenario_from_mapping,
    study_from_mapping,
)
from repro.fleet.study import EXAMPLE_STUDY_PATH, resolve_study_path
from repro.runner import ResultCache


def base_mapping(**study):
    """A minimal valid study mapping with the given [study] section."""
    return {
        "name": "s",
        "channels": 400,
        "populations": [
            {
                "name": "fleet",
                "channels": 400,
                "config": "arcc",
                "lifespan_years": 2.0,
            }
        ],
        "study": study,
    }


def tiny_study(**overrides):
    """A fast measured study: 1 mix, tiny traces, a 2x2 grid."""
    section = {
        "measured": True,
        "mixes": 1,
        "instruction_scales": [1000, 2000],
        "rate_multipliers": [1.0, 2.0],
        "policies": ["arcc", "sccdcd"],
    }
    section.update(overrides)
    section = {k: v for k, v in section.items() if v is not None}
    return study_from_mapping(base_mapping(**section))


def write_study(tmp_path, mapping, name="study.json"):
    path = tmp_path / name
    path.write_text(json.dumps(mapping))
    return path


class TestValidation:
    def test_missing_section_rejected(self):
        mapping = base_mapping()
        del mapping["study"]
        with pytest.raises(ScenarioFileError, match=r"\[study\]"):
            study_from_mapping(mapping)

    def test_both_aliases_rejected(self):
        mapping = base_mapping()
        mapping["sweep"] = {}
        with pytest.raises(ScenarioFileError, match="not both"):
            study_from_mapping(mapping)

    def test_study_file_rejected_by_plain_scenario_loader(self):
        with pytest.raises(ScenarioFileError, match="repro study"):
            scenario_from_mapping(base_mapping(measured=True))

    def test_unknown_key_suggests(self):
        with pytest.raises(
            ScenarioFileError, match="rate_multipliers"
        ) as excinfo:
            study_from_mapping(base_mapping(rate_multiplier=[1.0]))
        assert "study.rate_multiplier" in str(excinfo.value)

    def test_unknown_policy_suggests(self):
        with pytest.raises(ScenarioFileError, match="arcc"):
            study_from_mapping(base_mapping(policies=["arcx"]))

    def test_mixed_flat_and_nested_policies_rejected(self):
        with pytest.raises(ScenarioFileError, match="mixture"):
            study_from_mapping(base_mapping(policies=["arcc", ["sccdcd"]]))

    def test_nested_policy_sets_accepted(self):
        study = study_from_mapping(
            base_mapping(policies=[["arcc", "sccdcd"], ["arcc", "lotecc"]])
        )
        assert study.policy_sets == (("arcc", "sccdcd"), ("arcc", "lotecc"))

    def test_duplicate_axis_value_rejected(self):
        with pytest.raises(ScenarioFileError, match="duplicate"):
            study_from_mapping(base_mapping(rate_multipliers=[1.0, 1.0]))

    def test_zero_rate_multiplier_rejected(self):
        with pytest.raises(ScenarioFileError, match="must be > 0"):
            study_from_mapping(base_mapping(rate_multipliers=[0.0]))

    def test_fractions_need_zero_point(self):
        with pytest.raises(ScenarioFileError, match="0.0"):
            study_from_mapping(base_mapping(upgraded_fractions=[0.5, 1.0]))

    def test_fraction_above_one_rejected(self):
        with pytest.raises(ScenarioFileError, match="<= 1"):
            study_from_mapping(base_mapping(upgraded_fractions=[0.0, 1.5]))

    def test_scales_need_measurements(self):
        with pytest.raises(ScenarioFileError, match="measured"):
            study_from_mapping(base_mapping(instruction_scales=[1000]))

    def test_too_many_mixes_rejected(self):
        with pytest.raises(ScenarioFileError, match="12"):
            study_from_mapping(base_mapping(mixes=13))

    def test_unknown_engine_suggests(self):
        with pytest.raises(ScenarioFileError, match="compiled"):
            study_from_mapping(base_mapping(engine="compile"))

    def test_axis_only_organization_table_allowed(self):
        mapping = base_mapping(organizations=["custom"])
        mapping["organizations"] = {
            "custom": {
                "io_width": 8,
                "channels": 3,
                "ranks_per_channel": 1,
                "devices_per_rank": 9,
                "data_devices_per_rank": 8,
            }
        }
        study = study_from_mapping(mapping)
        assert [c.name for c in study.organizations] == ["custom"]

    def test_orphan_organization_table_rejected(self):
        mapping = base_mapping()
        mapping["organizations"] = {
            "orphan": {
                "io_width": 8,
                "channels": 3,
                "ranks_per_channel": 1,
                "devices_per_rank": 9,
                "data_devices_per_rank": 8,
            }
        }
        with pytest.raises(ScenarioFileError, match="orphan"):
            study_from_mapping(mapping)

    def test_unknown_axis_organization_suggests(self):
        with pytest.raises(ScenarioFileError, match="baseline"):
            study_from_mapping(base_mapping(organizations=["baselin"]))

    def test_single_channel_org_rejected_for_measured(self):
        mapping = base_mapping(measured=True, organizations=["narrow"])
        mapping["organizations"] = {
            "narrow": {
                "io_width": 8,
                "channels": 1,
                "ranks_per_channel": 1,
                "devices_per_rank": 9,
                "data_devices_per_rank": 8,
            }
        }
        with pytest.raises(ScenarioFileError, match="2 channels"):
            study_from_mapping(mapping)

    def test_source_prefixes_errors(self, tmp_path):
        path = write_study(tmp_path, base_mapping(mixes=0))
        with pytest.raises(ScenarioFileError, match="study.json"):
            load_study_file(path)


class TestExpansion:
    def test_example_study_loads(self):
        study = load_study_file(resolve_study_path(EXAMPLE_STUDY_PATH))
        assert study.measured
        assert len(study.points()) == 6  # 2x2 fleet grid + 2 sweeps

    def test_grid_is_cartesian_product(self):
        study = tiny_study()
        points = study.points()
        assert len(points) == 4  # 2 scales x 2 rate multipliers
        ids = [p.point_id for p in points]
        assert len(set(ids)) == 4
        assert all("policies=arcc+sccdcd" in pid for pid in ids)

    def test_rate_multipliers_share_measurements(self):
        """The dedup the issue demands: measurement jobs depend only on
        the instruction scale, so every rate multiplier reuses them."""
        plan = expand_study(tiny_study())
        one_rate = expand_study(tiny_study(rate_multipliers=[1.0]))
        assert len(plan.jobs) == len(one_rate.jobs)  # 2nd rate is free

    def test_sweep_zero_point_shares_measured_baseline(self):
        with_sweep = tiny_study(
            instruction_scales=[1000],
            rate_multipliers=[1.0],
            upgraded_fractions=[0.0, 0.5],
        )
        without = tiny_study(
            instruction_scales=[1000], rate_multipliers=[1.0]
        )
        grew = len(expand_study(with_sweep).jobs) - len(
            expand_study(without).jobs
        )
        sweep_alone = expand_study(
            tiny_study(
                measured=False,
                policies=["arcc"],
                instruction_scales=[1000],
                rate_multipliers=[1.0],
                upgraded_fractions=[0.0, 0.5],
            )
        )
        assert grew < len(sweep_alone.jobs)  # the 0.0 point was shared

    def test_unmeasured_grid_has_no_scale_axis(self):
        study = tiny_study(measured=False, instruction_scales=None)
        assert len(study.points()) == 2  # rate multipliers only
        assert all(
            p.instructions_per_core is None for p in study.points()
        )

    def test_quick_truncates_axes(self):
        study = tiny_study(
            rate_multipliers=[1.0, 2.0, 4.0, 8.0],
            upgraded_fractions=[0.0, 0.25, 0.5, 1.0],
        )
        quick = study.quick()
        assert len(quick.rate_multipliers) == 2
        assert quick.upgraded_fractions == (0.0, 0.25, 0.5)
        assert quick.mixes == 1
        assert all(s <= 10_000 for s in quick.effective_scales())
        assert quick.channels <= 2000


class TestRunStudy:
    def test_cold_then_warm(self, tmp_path):
        study = tiny_study()
        cache = ResultCache(tmp_path / "cache")
        cold = run_study(study, cache=cache)
        assert cold.executed_jobs == cold.unique_jobs > 0
        assert cold.cached_jobs == 0
        warm = run_study(study, cache=cache)
        assert warm.executed_jobs == 0
        assert warm.cached_jobs == warm.unique_jobs
        # The reports themselves replay identically from the cache.
        assert warm.points[0].report.to_table() == (
            cold.points[0].report.to_table()
        )

    def test_partial_prefix_resumes(self, tmp_path):
        """Growing an axis only pays for the new points (resume)."""
        cache = ResultCache(tmp_path / "cache")
        run_study(tiny_study(instruction_scales=[1000]), cache=cache)
        grown = run_study(tiny_study(), cache=cache)  # adds scale 2000
        assert grown.cached_jobs > 0
        assert grown.executed_jobs > 0
        assert grown.cached_jobs + grown.executed_jobs == grown.unique_jobs

    def test_jobs_counts_match_grid(self, tmp_path):
        result = run_study(tiny_study())
        assert result.total_jobs == sum(
            len(p.job_indices) for p in result.points
        )
        assert result.unique_jobs < result.total_jobs

    def test_point_result_lookup(self):
        result = run_study(tiny_study(instruction_scales=[1000]))
        pid = result.points[0].point.point_id
        assert result.point_result(pid) is result.points[0]
        with pytest.raises(KeyError):
            result.point_result("fleet/nope")


class TestManifest:
    def test_parallel_manifest_is_bit_identical(self, tmp_path):
        study = tiny_study()
        cache = ResultCache(tmp_path / "cache")
        serial = run_study(study, jobs=1, cache=cache)
        parallel = run_study(study, jobs=4, cache=ResultCache(tmp_path / "c2"))
        a = serial.write_manifest(tmp_path / "m1.json", cache=cache)
        b = parallel.write_manifest(tmp_path / "m2.json", cache=cache)
        assert a.read_bytes() == b.read_bytes()

    def test_manifest_contents(self, tmp_path):
        study = tiny_study(instruction_scales=[1000])
        cache = ResultCache(tmp_path / "cache")
        result = run_study(
            study, cache=cache, manifest_path=tmp_path / "m.json"
        )
        manifest = json.loads((tmp_path / "m.json").read_text())
        assert manifest["format"] == "repro-study/1"
        assert manifest["study"]["name"] == "s"
        assert manifest["unique_jobs"] == result.unique_jobs
        assert manifest["engine_provenance"]["resolved"] in (
            "compiled",
            "python",
        )
        point = manifest["points"][0]
        assert point["id"] == result.points[0].point.point_id
        assert len(point["cache_keys"]) == len(result.points[0].job_indices)
        # Every cache key is a real key of the batch's jobs.
        all_keys = {cache.key(job) for job in result.jobs}
        assert set(point["cache_keys"]) <= all_keys
        assert point["report"]["type"] == "fleet-compare"
        assert point["report"]["best"]["power"] in ("arcc", "sccdcd")


class TestCli:
    def test_study_command_runs_and_resumes(self, tmp_path, capsys):
        mapping = base_mapping(
            measured=True,
            mixes=1,
            instruction_scales=[1000],
            rate_multipliers=[1.0, 2.0],
            policies=["arcc", "sccdcd"],
        )
        path = write_study(tmp_path, mapping)
        argv = [
            "study",
            str(path),
            "--jobs",
            "1",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--manifest",
            str(tmp_path / "m.json"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "0 cached" in first
        assert (tmp_path / "m.json").exists()
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 executed" in second

    def test_cli_quick_flag(self, tmp_path, capsys):
        path = write_study(
            tmp_path,
            base_mapping(
                measured=True,
                instruction_scales=[50_000],
                policies=["arcc", "sccdcd"],
            ),
        )
        assert (
            main(
                [
                    "study",
                    str(path),
                    "--quick",
                    "--no-cache",
                    "--manifest",
                    str(tmp_path / "m.json"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[repro study]" in out

    def test_cli_rejects_invalid_file(self, tmp_path):
        path = write_study(tmp_path, base_mapping(mixes=99))
        with pytest.raises(SystemExit, match="repro study"):
            main(["study", str(path)])

    def test_cli_rejects_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="repro study"):
            main(["study", str(tmp_path / "nope.toml")])

    def test_registry_study_key_quick(self):
        from repro.runner.registry import build_plans

        (plan,) = build_plans(["study"], quick=True)
        assert plan.name == "study"
        assert plan.jobs
