"""Unit tests for repro.util.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitops import (
    bit_count,
    bytes_to_symbols,
    deinterleave,
    extract_bits,
    insert_bits,
    interleave,
    parity,
    symbols_to_bytes,
)


class TestBitCount:
    def test_zero(self):
        assert bit_count(0) == 0

    def test_powers_of_two(self):
        for i in range(64):
            assert bit_count(1 << i) == 1

    def test_all_ones(self):
        assert bit_count(0xFF) == 8
        assert bit_count((1 << 64) - 1) == 64

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bit_count(-1)

    @given(st.integers(min_value=0, max_value=1 << 128))
    def test_matches_bin_count(self, value):
        assert bit_count(value) == bin(value).count("1")


class TestParity:
    def test_even(self):
        assert parity(0b11) == 0

    def test_odd(self):
        assert parity(0b111) == 1

    @given(st.integers(min_value=0, max_value=1 << 64))
    def test_parity_is_bit_count_mod_2(self, value):
        assert parity(value) == bit_count(value) % 2


class TestExtractInsert:
    def test_extract_simple(self):
        assert extract_bits(0xABCD, 4, 8) == 0xBC

    def test_extract_zero_width(self):
        assert extract_bits(0xFF, 3, 0) == 0

    def test_extract_negative_rejected(self):
        with pytest.raises(ValueError):
            extract_bits(1, -1, 4)

    def test_insert_replaces_field(self):
        assert insert_bits(0xFFFF, 4, 8, 0x00) == 0xF00F

    def test_insert_overflow_rejected(self):
        with pytest.raises(ValueError):
            insert_bits(0, 0, 4, 0x10)

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=24),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=255),
    )
    def test_roundtrip(self, value, lo, width, field):
        field &= (1 << width) - 1
        updated = insert_bits(value, lo, width, field)
        assert extract_bits(updated, lo, width) == field


class TestSymbolConversion:
    def test_byte_symbols_identity(self):
        data = bytes(range(16))
        assert bytes_to_symbols(data, 8) == list(data)

    def test_nibble_split(self):
        assert bytes_to_symbols(b"\xab", 4) == [0xA, 0xB]

    def test_wide_symbols(self):
        assert bytes_to_symbols(b"\x12\x34", 16) == [0x1234]

    def test_uneven_split_rejected(self):
        with pytest.raises(ValueError):
            bytes_to_symbols(b"\x00", 3)

    def test_symbols_to_bytes_rejects_oversize(self):
        with pytest.raises(ValueError):
            symbols_to_bytes([0x100], 8)

    @given(st.binary(min_size=1, max_size=64), st.sampled_from([4, 8, 16]))
    def test_roundtrip(self, data, width):
        if (len(data) * 8) % width:
            data = data + b"\x00"
        symbols = bytes_to_symbols(data, width)
        assert symbols_to_bytes(symbols, width) == data


class TestInterleave:
    def test_basic(self):
        assert interleave([1, 3], [2, 4]) == [1, 2, 3, 4]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            interleave([1], [2, 3])

    def test_deinterleave_odd_length(self):
        with pytest.raises(ValueError):
            deinterleave([1, 2, 3])

    @given(st.lists(st.integers(), min_size=0, max_size=32))
    def test_roundtrip(self, values):
        a, b = values, list(reversed(values))
        mixed = interleave(a, b)
        back_a, back_b = deinterleave(mixed)
        assert back_a == a and back_b == b
