"""Unit tests for repro.util.tables, .rng and .units."""

import pytest

from repro.util.rng import make_rng, split_rng
from repro.util.tables import format_table
from repro.util.units import (
    GB,
    HOURS_PER_YEAR,
    KB,
    MB,
    fit_to_rate_per_hour,
    years_to_hours,
)


class TestUnits:
    def test_byte_units(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB

    def test_fit_conversion(self):
        assert fit_to_rate_per_hour(1e9) == pytest.approx(1.0)
        assert fit_to_rate_per_hour(100.0) == pytest.approx(1e-7)

    def test_years_to_hours(self):
        assert years_to_hours(1.0) == HOURS_PER_YEAR
        assert years_to_hours(7.0) == 7 * 8760


class TestRng:
    def test_same_seed_same_stream(self):
        a, b = make_rng(42), make_rng(42)
        assert a.integers(1 << 30) == b.integers(1 << 30)

    def test_different_seeds_differ(self):
        draws_a = make_rng(1).integers(0, 1 << 60, size=8)
        draws_b = make_rng(2).integers(0, 1 << 60, size=8)
        assert list(draws_a) != list(draws_b)

    def test_split_count(self):
        children = split_rng(7, 5)
        assert len(children) == 5

    def test_split_streams_independent(self):
        children = split_rng(7, 3)
        draws = [tuple(c.integers(0, 1 << 60, size=4)) for c in children]
        assert len(set(draws)) == 3

    def test_split_deterministic(self):
        first = [c.integers(1 << 30) for c in split_rng(9, 4)]
        second = [c.integers(1 << 30) for c in split_rng(9, 4)]
        assert first == second


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["A", "Long"], [["x", 1], ["yy", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_title_included(self):
        out = format_table(["A"], [["x"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = format_table(["V"], [[3.14159265]])
        assert "3.142" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["A", "B"], [["only-one"]])

    def test_empty_rows_ok(self):
        out = format_table(["A"], [])
        assert "A" in out
