"""Unit tests for repro.util.stats."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    OnlineStats,
    binomial_confidence_interval,
    confidence_interval,
    confidence_interval_from_moments,
    geometric_mean,
    harmonic_mean,
)


class TestGeometricMean:
    def test_identical_values(self):
        assert geometric_mean([3.0, 3.0, 3.0]) == pytest.approx(3.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestHarmonicMean:
    def test_known_value(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([-1.0])

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=100.0), min_size=2, max_size=20
        )
    )
    def test_ordering(self, values):
        """HM <= GM <= AM for positive values."""
        hm = harmonic_mean(values)
        gm = geometric_mean(values)
        am = sum(values) / len(values)
        assert hm <= gm * (1 + 1e-9)
        assert gm <= am * (1 + 1e-9)


class TestConfidenceInterval:
    def test_single_sample(self):
        mean, half = confidence_interval([5.0])
        assert mean == 5.0 and half == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            confidence_interval([])

    def test_symmetric_samples(self):
        mean, half = confidence_interval([1.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert half > 0

    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=40))
    def test_numpy_path_matches_list_path(self, values):
        """The vectorized fast path computes the same interval."""
        list_mean, list_half = confidence_interval(values)
        np_mean, np_half = confidence_interval(np.array(values))
        assert np_mean == pytest.approx(list_mean, rel=1e-9, abs=1e-9)
        assert np_half == pytest.approx(list_half, rel=1e-9, abs=1e-9)

    def test_numpy_empty_rejected(self):
        with pytest.raises(ValueError):
            confidence_interval(np.array([]))

    def test_two_dimensional_counts_elements_not_rows(self):
        """Regression: ``len(values)`` on a 2-D array counts rows, which
        understated n and inflated the half-width; ``values.size`` counts
        elements."""
        arr = np.arange(12, dtype=float).reshape(3, 4)
        mean, half = confidence_interval(arr)
        flat_mean, flat_half = confidence_interval(arr.ravel())
        assert mean == pytest.approx(flat_mean)
        assert half == pytest.approx(flat_half)

    @given(
        st.lists(st.floats(-1e3, 1e3), min_size=4, max_size=40),
        st.integers(2, 4),
    )
    def test_any_shape_matches_ravel(self, values, cols):
        values = values[: len(values) // cols * cols]
        if not values:
            return
        arr = np.array(values).reshape(-1, cols)
        shaped = confidence_interval(arr)
        flat = confidence_interval(arr.ravel())
        assert shaped[0] == pytest.approx(flat[0], rel=1e-9, abs=1e-9)
        assert shaped[1] == pytest.approx(flat[1], rel=1e-9, abs=1e-9)


class TestConfidenceIntervalFromMoments:
    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=40))
    def test_matches_sample_interval(self, values):
        """Pre-reduced moments reproduce the per-sample interval."""
        direct = confidence_interval(values)
        moments = confidence_interval_from_moments(
            len(values), sum(values), sum(v * v for v in values)
        )
        assert moments[0] == pytest.approx(direct[0], rel=1e-9, abs=1e-9)
        # The sum-of-squares form cancels catastrophically when the
        # spread is tiny relative to the magnitude; the residual error
        # scales with sqrt(eps) * |sum|.
        tolerance = 1e-6 * (1.0 + sum(abs(v) for v in values))
        assert moments[1] == pytest.approx(direct[1], rel=1e-6, abs=tolerance)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            confidence_interval_from_moments(0, 0.0, 0.0)

    def test_cancellation_clamped(self):
        """Catastrophic cancellation must not produce a NaN half-width."""
        mean, half = confidence_interval_from_moments(3, 3.0, 3.0 - 1e-12)
        assert mean == pytest.approx(1.0)
        assert half == 0.0


class TestBinomialConfidenceInterval:
    @given(st.integers(1, 200), st.data())
    def test_matches_indicator_vector(self, trials, data):
        """Equivalent to confidence_interval over the implied 0/1 vector."""
        successes = data.draw(st.integers(0, trials))
        vector = [1.0] * successes + [0.0] * (trials - successes)
        direct = confidence_interval(vector)
        binomial = binomial_confidence_interval(successes, trials)
        assert binomial[0] == pytest.approx(direct[0], abs=1e-12)
        assert binomial[1] == pytest.approx(direct[1], abs=1e-9)

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            binomial_confidence_interval(0, 0)


class TestOnlineStats:
    def test_empty(self):
        stats = OnlineStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_matches_batch_computation(self):
        values = [1.5, 2.5, -3.0, 4.0, 0.0]
        stats = OnlineStats()
        for v in values:
            stats.add(v)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert stats.mean == pytest.approx(mean)
        assert stats.variance == pytest.approx(var)
        assert stats.stddev == pytest.approx(math.sqrt(var))

    def test_merge_matches_combined(self):
        a_vals = [1.0, 2.0, 3.0]
        b_vals = [10.0, 20.0]
        a, b, combined = OnlineStats(), OnlineStats(), OnlineStats()
        for v in a_vals:
            a.add(v)
            combined.add(v)
        for v in b_vals:
            b.add(v)
            combined.add(v)
        a.merge(b)
        assert a.count == combined.count
        assert a.mean == pytest.approx(combined.mean)
        assert a.variance == pytest.approx(combined.variance)

    def test_merge_empty_is_noop(self):
        a = OnlineStats()
        a.add(1.0)
        a.merge(OnlineStats())
        assert a.count == 1 and a.mean == 1.0

    def test_merge_into_empty(self):
        a, b = OnlineStats(), OnlineStats()
        b.add(7.0)
        b.add(9.0)
        a.merge(b)
        assert a.count == 2 and a.mean == pytest.approx(8.0)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_property_matches_numpy_style(self, values):
        stats = OnlineStats()
        for v in values:
            stats.add(v)
        mean = sum(values) / len(values)
        assert stats.mean == pytest.approx(mean, rel=1e-6, abs=1e-6)
