"""Tests for the workload substrate and the trace-driven simulator."""

import pytest

from repro.config import ARCC_MEMORY_CONFIG, BASELINE_MEMORY_CONFIG
from repro.perf.simulator import (
    TraceSimulator,
    page_is_upgraded,
    worst_case_performance_ratio,
    worst_case_power_ratio,
)
from repro.util.rng import make_rng
from repro.workloads.spec import (
    ALL_MIXES,
    BENCHMARKS,
    BenchmarkProfile,
    mix_by_name,
)
from repro.workloads.trace import CoreTrace, TraceGenerator


class TestBenchmarkProfiles:
    def test_all_mix_benchmarks_defined(self):
        for mix in ALL_MIXES:
            assert len(mix.profiles) == 4

    def test_twelve_mixes(self):
        assert len(ALL_MIXES) == 12
        assert [m.name for m in ALL_MIXES] == [
            f"Mix{i}" for i in range(1, 13)
        ]

    def test_table_7_3_contents(self):
        mix1 = mix_by_name("Mix1")
        assert mix1.benchmark_names == (
            "mesa", "leslie3d", "GemsFDTD", "fma3d",
        )
        mix10 = mix_by_name("Mix10")
        assert "libquantum" in mix10.benchmark_names

    def test_unknown_mix_rejected(self):
        with pytest.raises(KeyError):
            mix_by_name("Mix13")

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(
                name="bad", base_ipc=3.0, llc_mpki=1, read_fraction=0.5,
                spatial_locality=0.5, mlp=1,
            )
        with pytest.raises(ValueError):
            BenchmarkProfile(
                name="bad", base_ipc=1.0, llc_mpki=1, read_fraction=0.5,
                spatial_locality=1.0, mlp=1,
            )

    def test_memory_bound_vs_compute_bound(self):
        assert BENCHMARKS["mcf2006"].llc_mpki > BENCHMARKS["mesa"].llc_mpki
        assert BENCHMARKS["libquantum"].spatial_locality > (
            BENCHMARKS["omnetpp"].spatial_locality
        )

    def test_mix_average_locality_weighted(self):
        mix = mix_by_name("Mix1")
        avg = mix.average_spatial_locality
        locs = [p.spatial_locality for p in mix.profiles]
        assert min(locs) <= avg <= max(locs)


class TestTraceGeneration:
    def test_deterministic(self):
        gen_a = TraceGenerator(mix_by_name("Mix1").profiles, seed=1)
        gen_b = TraceGenerator(mix_by_name("Mix1").profiles, seed=1)
        trace_a = gen_a.core_traces()[0]
        trace_b = gen_b.core_traces()[0]
        for _ in range(100):
            a, b = next(trace_a), next(trace_b)
            assert a.line_address == b.line_address
            assert a.is_write == b.is_write

    def test_cores_in_disjoint_regions(self):
        traces = TraceGenerator(mix_by_name("Mix1").profiles).core_traces()
        regions = set()
        for trace in traces:
            access = next(trace)
            regions.add(access.line_address >> 22)
        assert len(regions) == 4

    def test_addresses_within_footprint(self):
        profile = BENCHMARKS["swim"]
        trace = CoreTrace(profile, core_id=0, rng=make_rng(2))
        for _ in range(500):
            access = next(trace)
            assert 0 <= access.line_address < trace.footprint_lines

    def test_spatial_locality_shows_in_stream(self):
        """A high-locality benchmark produces mostly sequential steps."""
        hot = CoreTrace(BENCHMARKS["libquantum"], 0, make_rng(3))
        cold = CoreTrace(BENCHMARKS["omnetpp"], 0, make_rng(3))

        def sequential_fraction(trace):
            last, seq, total = None, 0, 0
            for _ in range(2000):
                access = next(trace)
                if last is not None:
                    total += 1
                    if access.line_address == last + 1:
                        seq += 1
                last = access.line_address
            return seq / total

        assert sequential_fraction(hot) > sequential_fraction(cold) + 0.3

    def test_read_fraction_respected(self):
        profile = BENCHMARKS["sphinx3"]  # 85% reads
        trace = CoreTrace(profile, 0, make_rng(4))
        writes = sum(1 for _ in range(3000) if next(trace).is_write)
        assert 0.05 < writes / 3000 < 0.30

    def test_gap_positive(self):
        trace = CoreTrace(BENCHMARKS["mesa"], 0, make_rng(5))
        assert all(
            next(trace).instructions_since_last >= 1 for _ in range(100)
        )


class TestPageUpgradedHash:
    def test_extremes(self):
        assert not page_is_upgraded(123, 0.0)
        assert page_is_upgraded(123, 1.0)

    def test_fraction_approximately_respected(self):
        for fraction in (0.1, 0.5):
            hits = sum(
                1 for p in range(10_000) if page_is_upgraded(p, fraction)
            )
            assert abs(hits / 10_000 - fraction) < 0.03

    def test_deterministic(self):
        assert page_is_upgraded(42, 0.3) == page_is_upgraded(42, 0.3)


class TestWorstCaseRatios:
    def test_power_lane_doubles(self):
        assert worst_case_power_ratio(1.0) == 2.0

    def test_perf_lane_halves(self):
        assert worst_case_performance_ratio(1.0) == 0.5

    def test_identity_at_zero(self):
        assert worst_case_power_ratio(0.0) == 1.0
        assert worst_case_performance_ratio(0.0) == 1.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            worst_case_power_ratio(1.5)
        with pytest.raises(ValueError):
            worst_case_performance_ratio(-0.1)


class TestTraceSimulator:
    def test_result_structure(self):
        result = TraceSimulator(ARCC_MEMORY_CONFIG).run(
            mix_by_name("Mix1"), instructions_per_core=5_000
        )
        assert len(result.cores) == 4
        assert result.performance > 0
        assert result.power.total_w > 0
        assert 0 <= result.llc_miss_rate <= 1

    def test_deterministic(self):
        a = TraceSimulator(ARCC_MEMORY_CONFIG, seed=9).run(
            mix_by_name("Mix2"), instructions_per_core=5_000
        )
        b = TraceSimulator(ARCC_MEMORY_CONFIG, seed=9).run(
            mix_by_name("Mix2"), instructions_per_core=5_000
        )
        assert a.performance == b.performance
        assert a.power.total_w == b.power.total_w

    def test_arcc_saves_power(self):
        """The headline comparison on one mix."""
        mix = mix_by_name("Mix5")
        base = TraceSimulator(BASELINE_MEMORY_CONFIG).run(
            mix, instructions_per_core=10_000
        )
        arcc = TraceSimulator(ARCC_MEMORY_CONFIG).run(
            mix, instructions_per_core=10_000
        )
        saving = 1 - arcc.power.total_w / base.power.total_w
        assert 0.25 < saving < 0.50

    def test_upgraded_fraction_costs_power(self):
        mix = mix_by_name("Mix5")
        clean = TraceSimulator(
            ARCC_MEMORY_CONFIG, upgraded_fraction=0.0
        ).run(mix, instructions_per_core=10_000)
        faulty = TraceSimulator(
            ARCC_MEMORY_CONFIG, upgraded_fraction=1.0
        ).run(mix, instructions_per_core=10_000)
        ratio = faulty.power.total_w / clean.power.total_w
        assert 1.05 < ratio < 2.0  # below the worst-case 2x

    def test_upgrade_requires_arcc_config(self):
        with pytest.raises(ValueError):
            TraceSimulator(
                BASELINE_MEMORY_CONFIG,
                upgraded_fraction=0.5,
                arcc_enabled=False,
            )

    def test_ipc_bounded_by_base(self):
        result = TraceSimulator(ARCC_MEMORY_CONFIG).run(
            mix_by_name("Mix1"), instructions_per_core=5_000
        )
        for core, profile in zip(
            result.cores, mix_by_name("Mix1").profiles
        ):
            assert core.ipc <= profile.base_ipc * (1 + 1e-9)
